//! The event-driven EASY backfilling simulator.
//!
//! # Scheduling semantics
//!
//! On every event (job arrival or completion) the engine runs a scheduling
//! pass:
//!
//! 1. **Start head jobs.** While the head of the wait queue fits on the
//!    currently free processors it starts immediately (First Fit processor
//!    selection), at the gear chosen by the [`FrequencyPolicy`].
//! 2. **Reserve.** The remaining head job (if any) receives the only
//!    reservation: the earliest instant — according to the *requested*
//!    completion times of running jobs — at which its processors are
//!    available. The reservation (at its policy-chosen gear and dilated
//!    requested duration) is committed into the availability profile.
//! 3. **Backfill.** Every other queued job, in arrival order, may start now
//!    iff its dilated requested runtime fits the committed profile — i.e.
//!    iff it cannot delay the reservation. The gear is again chosen by the
//!    policy, which may decline.
//!
//! Because passes rerun on every completion, early finishes automatically
//! reschedule all queued jobs, as in the paper. Reservations are
//! re-derived each pass and can only move earlier, preserving the EASY
//! no-delay guarantee.
//!
//! # Incremental pass pipeline
//!
//! Naively, every event rebuilds the availability profile from *all*
//! running jobs and re-runs the whole pass — O(events × running jobs) of
//! pure re-derivation. With [`EngineConfig::incremental`] (the default)
//! the engine instead maintains:
//!
//! * a **sorted running-jobs index** (`expected_end → cpus`), so a rebuild
//!   is a merged in-order iteration instead of a scan-and-sort, feeding a
//!   **reusable** [`ProfileBuilder`]/profile buffer (no per-pass
//!   allocation);
//! * a **cached head reservation** plus the committed profile it lives in,
//!   kept alive across events and updated *in place*: a completion releases
//!   the finished job's remaining `[now, expected_end)` window
//!   ([`bsld_cluster::Profile::release_over`]), the stale reservation is
//!   released, the reservation is re-derived (it can only move earlier) and
//!   re-committed — no rebuild;
//! * **pass skipping** for arrival events that provably cannot change the
//!   schedule, and **batching** of same-instant arrivals (via the event
//!   queue's peek) into a single pass.
//!
//! A full rebuild only happens when the cache is genuinely invalidated: a
//! running job's *requested* end has been reached without its completion
//! event (same-instant ordering), a mid-run re-time (boost), a reservation
//! that starts "now" (contiguous-selection fragmentation), or a pass that
//! started the cached head.
//!
//! ## Pass-skip conditions
//!
//! An arrival event is skipped (no pass at all) only when **all** hold:
//! the engine runs EASY mode with no [`PowerHook`], no trace collection and
//! no boost; the policy declares itself elision-safe
//! ([`crate::FrequencyPolicy::pass_elision_safe`]) or backfilling is off;
//! the queue was non-empty (so the head — which could not start at the
//! previous pass, and nothing has freed processors since — is unchanged);
//! and the arriving job either needs more processors than are free or is
//! declined by `backfill_gear` against the cached committed profile. Under
//! the elision-safety contract every *older* queued job keeps failing too
//! (its wait only grew and the profile only weakened), so outcomes are
//! bit-identical to the full re-scheduling engine —
//! `EngineConfig { incremental: false, .. }` keeps the always-rebuild path
//! as an A/B oracle, and [`SimResult::stats`] exposes rebuild/skip counters.
//!
//! # Dynamic boost (paper future work)
//!
//! With [`BoostConfig`] enabled, whenever the wait queue is deeper than
//! `wq_limit` after a pass, every running job at a reduced gear is re-timed
//! to the top gear from "now" onwards. Completed work is converted through
//! the β model, a new completion event is scheduled (stale events are
//! invalidated by an epoch counter), and the gear change is recorded as a
//! new execution phase.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use bsld_cluster::{Cluster, ProcSet, ProcessorPool, Profile, ProfileBuilder, SelectionPolicy};
use bsld_model::{GearId, Job, JobId, JobOutcome, Phase};
use bsld_power::BetaModel;
use bsld_simkernel::{EventQueue, Time};

use crate::hook::PowerHook;
use crate::policy::{DecisionCtx, FrequencyPolicy};

/// The queueing discipline the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// EASY backfilling (the paper's substrate): one reservation for the
    /// queue head; other jobs backfill iff they cannot delay it.
    #[default]
    Easy,
    /// Conservative backfilling: *every* queued job holds a reservation
    /// (re-derived each event, in arrival order); a job starts early only
    /// into holes left by all earlier reservations. The classic
    /// lower-variance alternative to EASY, provided as an ablation
    /// substrate.
    Conservative,
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Queueing discipline.
    pub mode: SchedMode,
    /// Enable backfilling (EASY step 3). `false` degrades EASY to plain
    /// FCFS with a head reservation — the ablation baseline. Ignored under
    /// [`SchedMode::Conservative`] (conservative *is* backfilling).
    pub backfill: bool,
    /// Resource selection policy: which processors a cleared job gets.
    pub selection: SelectionPolicy,
    /// Record a [`TraceEvent`] log of scheduling actions.
    pub collect_trace: bool,
    /// Enable the dynamic-boost extension.
    pub boost: Option<BoostConfig>,
    /// Run the incremental hot path (cached reservation, in-place profile
    /// updates, pass skipping — see the module docs). `false` forces the
    /// reference behaviour: a full profile rebuild on every pass. Outcomes
    /// are bit-identical either way; the toggle exists for A/B verification
    /// and benchmarking.
    pub incremental: bool,
    /// Cooperative-cancellation flag, polled once per event. When a caller
    /// raises it (e.g. a campaign cell's wall-time budget expired), the run
    /// returns [`SimError::Aborted`] at the next event instead of driving
    /// the workload to completion. `None` (the default) checks nothing.
    pub abort: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Deterministic trace sink (the `bsld-obs` trace plane): when set,
    /// the engine records structured sim-time events — arrivals, starts,
    /// finishes, pass outcomes (including elision), cap vetoes, retries,
    /// boosts — through it. Unlike [`EngineConfig::collect_trace`], a sink
    /// does *not* disable pass elision: skipped passes are themselves
    /// traced. `None` (the default) is a no-op: one branch per would-be
    /// event, no allocation.
    pub sink: Option<std::sync::Arc<dyn bsld_obs::TraceSink>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: SchedMode::Easy,
            backfill: true,
            selection: SelectionPolicy::FirstFit,
            collect_trace: false,
            boost: None,
            incremental: true,
            abort: None,
            sink: None,
        }
    }
}

/// Dynamic-boost extension parameters.
#[derive(Debug, Clone, Copy)]
pub struct BoostConfig {
    /// Boost running reduced jobs to the top gear whenever more than this
    /// many jobs are waiting after a scheduling pass.
    pub wq_limit: usize,
}

/// Scheduling actions, recorded when `collect_trace` is on.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A job began executing.
    Start {
        /// Time of the action.
        at: Time,
        /// The job.
        job: JobId,
        /// Assigned gear.
        gear: GearId,
        /// Whether the job started via backfilling (ahead of earlier
        /// arrivals).
        backfilled: bool,
        /// First processor index of the allocation (First Fit evidence).
        first_proc: u32,
    },
    /// A head-of-queue reservation was (re-)derived.
    Reserve {
        /// Time of the action.
        at: Time,
        /// The job holding the reservation.
        job: JobId,
        /// Reserved start time.
        start: Time,
        /// Gear the reservation was priced at.
        gear: GearId,
    },
    /// A job completed.
    Finish {
        /// Time of the action.
        at: Time,
        /// The job.
        job: JobId,
    },
    /// A running job was boosted to the top gear.
    Boost {
        /// Time of the action.
        at: Time,
        /// The job.
        job: JobId,
        /// Gear before the boost.
        from: GearId,
    },
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A job requests more processors than the machine has.
    JobTooLarge {
        /// The offending job.
        job: JobId,
        /// Processors requested.
        cpus: u32,
        /// Machine size.
        total: u32,
    },
    /// Jobs were not sorted by arrival time.
    ArrivalsNotSorted,
    /// The simulation ran out of events with jobs still waiting: a power
    /// hook vetoed every start and nothing is running whose completion
    /// could free budget — the configured power cap is infeasible for the
    /// workload.
    Stalled {
        /// Jobs left waiting when the event queue drained.
        waiting: usize,
    },
    /// The caller raised [`EngineConfig::abort`] mid-run (a wall-time
    /// budget expired, or the driver is shutting down); the partial state
    /// is discarded.
    Aborted,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::JobTooLarge { job, cpus, total } => {
                write!(f, "{job} requests {cpus} cpus but the machine has {total}")
            }
            SimError::ArrivalsNotSorted => write!(f, "jobs must be sorted by arrival time"),
            SimError::Stalled { waiting } => write!(
                f,
                "simulation stalled with {waiting} jobs waiting: the power cap admits no start"
            ),
            SimError::Aborted => write!(f, "simulation aborted by the caller"),
        }
    }
}

impl std::error::Error for SimError {}

/// Scheduling-pass statistics (diagnostics for the incremental engine).
///
/// Counter semantics: every *executed* pass increments `passes`; a pass
/// that rebuilt the availability profile from the running-jobs index also
/// increments `profile_rebuilds`; an event (or same-instant arrival batch)
/// whose pass was proven a no-op and skipped outright increments
/// `passes_skipped` and nothing else. With
/// [`EngineConfig::incremental`]` = false`, `passes_skipped` stays 0 and
/// every pass that reaches the reservation step rebuilds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Scheduling passes executed.
    pub passes: u64,
    /// Passes that rebuilt the availability profile from scratch.
    pub profile_rebuilds: u64,
    /// Events whose scheduling pass was provably a no-op and skipped.
    pub passes_skipped: u64,
}

/// The result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// One outcome per job, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Completion time of the last job (simulation start is 0).
    pub makespan: Time,
    /// Scheduling-action log (when `collect_trace` was set).
    pub trace: Vec<TraceEvent>,
    /// Pass/rebuild/skip counters of the incremental engine.
    pub stats: PassStats,
}

impl SimResult {
    /// Outcomes re-sorted by job id (arrival order).
    pub fn outcomes_by_id(&self) -> Vec<&JobOutcome> {
        let mut v: Vec<&JobOutcome> = self.outcomes.iter().collect();
        v.sort_by_key(|o| o.id);
        v
    }
}

enum Event {
    Arrive(JobId),
    Finish(JobId, u32),
    /// A no-op wake-up requested by the power hook: its power state will
    /// change autonomously at this instant (e.g. an idle sleep transition
    /// frees budget), so deferred starts deserve a fresh scheduling pass.
    PowerRetry,
}

struct RunningJob {
    cpus: u32,
    procs: ProcSet,
    start: Time,
    /// When the reservation bookkeeping expects the processors back
    /// (requested time, dilated to the current gear, from the current
    /// phase's start).
    expected_end: Time,
    /// Current gear.
    gear: GearId,
    /// Wall-clock start of the current phase.
    phase_start: Time,
    /// Completed phases before the current one.
    phases: Vec<Phase>,
    /// Top-frequency work-seconds completed before the current phase.
    work_done: f64,
    /// Requested-work-seconds budget consumed before the current phase
    /// (for re-deriving `expected_end` after a boost).
    requested_done: f64,
    /// Invalidates stale completion events after a re-time.
    epoch: u32,
}

/// The cached head-of-queue reservation (see the module docs): the window
/// committed into the live profile, remembered so later passes can release
/// and re-derive it in place.
#[derive(Debug, Clone, Copy)]
struct HeadReservation {
    head: JobId,
    start: Time,
    end: Time,
}

/// An in-flight simulation. Use [`simulate`] unless you need stepping.
pub struct Simulation<'a, P: FrequencyPolicy + ?Sized> {
    jobs: &'a [Job],
    policy: &'a P,
    time_model: &'a BetaModel,
    cfg: EngineConfig,
    top: GearId,
    hook: Option<&'a mut dyn PowerHook>,

    now: Time,
    /// The latest power-retry instant already scheduled (dedup guard).
    pending_retry: Option<Time>,
    events: EventQueue<Event>,
    pool: ProcessorPool,
    queue: VecDeque<JobId>,
    running: BTreeMap<JobId, RunningJob>,
    /// Sorted running-jobs index: expected (requested) end → cpus freed
    /// there. Rebuilding the profile is a merged in-order iteration of this
    /// map; completions/boosts keep it current.
    end_index: BTreeMap<Time, u32>,
    /// Reusable profile-construction buffers (no per-pass allocation).
    builder: ProfileBuilder,
    profile: Profile,
    /// The reservation currently committed into `profile`, if the cache is
    /// live.
    cache: Option<HeadReservation>,
    /// `(expected_end, cpus)` of the job completed by the current event,
    /// consumed by the next pass's in-place profile update.
    last_completion: Option<(Time, u32)>,
    /// Whether pass elision (cache + skip + batching) is permitted for this
    /// run; see the module docs for the exact conditions.
    elide: bool,
    /// Scratch buffers reused across passes.
    scratch_candidates: Vec<JobId>,
    scratch_started: Vec<JobId>,
    outcomes: Vec<JobOutcome>,
    trace: Vec<TraceEvent>,
    stats: PassStats,
}

/// Runs `jobs` (sorted by arrival) on `cluster` under `policy`.
///
/// This is the whole-workload entry point used by every experiment.
pub fn simulate<P: FrequencyPolicy + ?Sized>(
    cluster: &Cluster,
    jobs: &[Job],
    policy: &P,
    time_model: &BetaModel,
    cfg: &EngineConfig,
) -> Result<SimResult, SimError> {
    Simulation::new(cluster, jobs, policy, time_model, cfg.clone())?.run()
}

/// Runs `jobs` on `cluster` under `policy` with a [`PowerHook`] observing
/// and gating every power-relevant decision (see `bsld-powercap`).
pub fn simulate_with_hook<P: FrequencyPolicy + ?Sized>(
    cluster: &Cluster,
    jobs: &[Job],
    policy: &P,
    time_model: &BetaModel,
    cfg: &EngineConfig,
    hook: &mut dyn PowerHook,
) -> Result<SimResult, SimError> {
    Simulation::new(cluster, jobs, policy, time_model, cfg.clone())?
        .with_hook(hook)
        .run()
}

impl<'a, P: FrequencyPolicy + ?Sized> Simulation<'a, P> {
    /// Validates inputs and prepares the event queue.
    pub fn new(
        cluster: &Cluster,
        jobs: &'a [Job],
        policy: &'a P,
        time_model: &'a BetaModel,
        cfg: EngineConfig,
    ) -> Result<Self, SimError> {
        for w in jobs.windows(2) {
            if w[1].arrival < w[0].arrival {
                return Err(SimError::ArrivalsNotSorted);
            }
        }
        for job in jobs {
            if job.cpus > cluster.cpus {
                return Err(SimError::JobTooLarge {
                    job: job.id,
                    cpus: job.cpus,
                    total: cluster.cpus,
                });
            }
        }
        let mut events = EventQueue::with_capacity(jobs.len() * 2);
        for job in jobs {
            events.push(job.arrival, Event::Arrive(job.id));
        }
        // Pass elision is only provably outcome-preserving under EASY with
        // no hook/trace/boost and an elision-safe policy (or no
        // backfilling, where an arrival behind a blocked head is inert).
        let elide = cfg.incremental
            && cfg.mode == SchedMode::Easy
            && !cfg.collect_trace
            && cfg.boost.is_none()
            && (policy.pass_elision_safe() || !cfg.backfill);
        let pool = cluster.pool();
        Ok(Simulation {
            jobs,
            policy,
            time_model,
            cfg,
            top: time_model.gears().top(),
            hook: None,
            now: Time::ZERO,
            pending_retry: None,
            events,
            builder: ProfileBuilder::new(Time::ZERO, pool.total(), pool.total()),
            profile: Profile::flat(Time::ZERO, pool.total(), pool.total()),
            pool,
            queue: VecDeque::new(),
            running: BTreeMap::new(),
            end_index: BTreeMap::new(),
            cache: None,
            last_completion: None,
            elide,
            scratch_candidates: Vec::new(),
            scratch_started: Vec::new(),
            outcomes: Vec::with_capacity(jobs.len()),
            trace: Vec::new(),
            stats: PassStats::default(),
        })
    }

    /// Attaches a [`PowerHook`] (builder style). The hook observes every
    /// start/completion/gear change and may veto or down-gear decisions.
    pub fn with_hook(mut self, hook: &'a mut dyn PowerHook) -> Self {
        self.hook = Some(hook);
        // A hook's admissions depend on power state the elision proofs do
        // not model — every event takes the full pass.
        self.elide = false;
        self
    }

    /// Drives the event loop to completion.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        let abort = self.cfg.abort.clone();
        let mut batch: Vec<JobId> = Vec::new();
        while let Some((t, ev)) = self.events.pop() {
            // One relaxed load per event — noise next to a scheduling
            // pass — buys prompt, deterministic cancellation: the run
            // never advances past the event at which the flag was seen.
            if let Some(flag) = &abort {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(SimError::Aborted);
                }
            }
            debug_assert!(t >= self.now, "event time went backwards");
            // Discard no-op events *before* advancing the hook's clock: a
            // stale Finish (from before a re-time) or an obsolete power
            // retry can sit later than the run's real makespan, and
            // advancing the ledger there would integrate energy past the
            // end of the run.
            match &ev {
                Event::Finish(id, epoch) => {
                    if self.running.get(id).is_none_or(|r| r.epoch != *epoch) {
                        continue;
                    }
                }
                Event::PowerRetry => {
                    // The wake-up is being delivered (or is obsolete):
                    // clear the dedup guard either way, so a hook that
                    // re-reports the same future instant is not swallowed
                    // by bookkeeping for an event that no longer exists.
                    if self.pending_retry == Some(t) {
                        self.pending_retry = None;
                    }
                    if self.queue.is_empty() {
                        continue;
                    }
                }
                Event::Arrive(_) => {}
            }
            self.now = t;
            if let Some(h) = self.hook.as_deref_mut() {
                h.on_time(t);
            }
            match ev {
                Event::Arrive(id) => {
                    self.queue.push_back(id);
                    self.emit(|| bsld_obs::TraceEvent::JobArrive {
                        t: t.as_micros(),
                        job: u64::from(id.0),
                    });
                    if self.elide {
                        // Batch-peek: workload arrivals are enqueued before
                        // any completion, so same-instant arrivals are
                        // delivered back to back; coalesce them into one
                        // pass (provably identical under elision — see the
                        // module docs).
                        batch.clear();
                        batch.push(id);
                        while matches!(self.events.peek(), Some((t2, Event::Arrive(_))) if t2 == t)
                        {
                            match self.events.pop() {
                                Some((_, Event::Arrive(id2))) => {
                                    self.queue.push_back(id2);
                                    self.emit(|| bsld_obs::TraceEvent::JobArrive {
                                        t: t.as_micros(),
                                        job: u64::from(id2.0),
                                    });
                                    batch.push(id2);
                                }
                                _ => unreachable!("peeked arrival must pop"),
                            }
                        }
                        self.pass_after_arrivals(&batch);
                    } else {
                        self.schedule_pass();
                    }
                }
                Event::Finish(id, _) => {
                    self.complete(id);
                    self.schedule_pass();
                }
                Event::PowerRetry => {
                    self.emit(|| bsld_obs::TraceEvent::PowerRetry { t: t.as_micros() });
                    self.schedule_pass();
                }
            }
            self.maybe_boost();
            self.maybe_schedule_power_retry();
        }
        if !self.queue.is_empty() {
            // Only reachable when a power hook vetoes every start with
            // nothing running: the budget is infeasible for the workload.
            return Err(SimError::Stalled {
                waiting: self.queue.len(),
            });
        }
        debug_assert!(
            self.running.is_empty(),
            "jobs left running at end of simulation"
        );
        let makespan = self
            .outcomes
            .iter()
            .map(|o| o.finish)
            .max()
            .unwrap_or(Time::ZERO);
        Ok(SimResult {
            outcomes: self.outcomes,
            makespan,
            trace: self.trace,
            stats: self.stats,
        })
    }

    /// The job record for `id`. Returns the `'a` workload lifetime (not
    /// tied to `&self`), so callers can keep the reference across mutable
    /// engine calls.
    fn job(&self, id: JobId) -> &'a Job {
        &self.jobs[id.index()]
    }

    /// Records a `bsld-obs` trace event on the configured sink. The
    /// closure defers event construction, so the disabled path (`sink =
    /// None`) costs one branch and allocates nothing.
    #[inline]
    fn emit(&self, ev: impl FnOnce() -> bsld_obs::TraceEvent) {
        if let Some(sink) = &self.cfg.sink {
            sink.record(ev());
        }
    }

    fn ctx<'b>(&'b self, job: &'b Job, wq_others: usize) -> DecisionCtx<'b> {
        DecisionCtx {
            now: self.now,
            job,
            wq_others,
            time_model: self.time_model,
        }
    }

    /// Schedules a wake-up at the hook's next autonomous power-state
    /// change while jobs wait. Without this, a start deferred on a fully
    /// idle machine would never be retried even though a pending sleep
    /// transition will lower draw below the budget — sleep transitions
    /// generate no job events of their own.
    fn maybe_schedule_power_retry(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let now = self.now;
        let Some(h) = self.hook.as_deref_mut() else {
            return;
        };
        let Some(at) = h.next_power_event(now) else {
            return;
        };
        if at <= now || self.pending_retry == Some(at) {
            return;
        }
        self.pending_retry = Some(at);
        self.events.push(at, Event::PowerRetry);
    }

    /// Tells the power hook (if any) that its last admission was not
    /// honored — the start it approved did not happen.
    fn hook_declined(&mut self) {
        if let Some(h) = self.hook.as_deref_mut() {
            h.admission_declined();
        }
    }

    /// Consults the power hook (if any) about starting `cpus` processors at
    /// `gear` right now. `None` means the start is deferred.
    fn hook_admit(
        &mut self,
        cpus: u32,
        gear: GearId,
        wq_others: usize,
        head: bool,
    ) -> Option<GearId> {
        let now = self.now;
        match self.hook.as_deref_mut() {
            None => Some(gear),
            Some(h) => {
                let admitted = h.admit_start(now, cpus, gear, wq_others, head)?;
                debug_assert!(admitted <= gear, "a power hook may only down-gear a start");
                Some(admitted)
            }
        }
    }

    /// Attempts to start `id` right now at `gear` under the configured
    /// selection policy. Returns `false` (changing nothing) when the
    /// selection policy cannot serve the request — only possible with
    /// contiguous selection under fragmentation.
    fn try_start_job(&mut self, id: JobId, gear: GearId, backfilled: bool) -> bool {
        let job = &self.jobs[id.index()];
        let Some(procs) = self.pool.allocate(job.cpus, self.cfg.selection) else {
            return false;
        };
        let wall = self.time_model.dilate(job.runtime, job.beta, gear);
        let expected = self.time_model.dilate(job.requested, job.beta, gear);
        // Real traces contain jobs whose runtime exceeds the user estimate.
        // EASY's reservation bookkeeping treats the estimate as binding, so
        // an overrunning job is killed at its (dilated) requested time —
        // kill-at-request semantics, matching production batch systems.
        let wall = wall.min(expected);
        let finish_at = self.now + wall;
        self.events.push(finish_at, Event::Finish(id, 0));
        let first_proc = procs.first().unwrap_or(0);
        if self.cfg.collect_trace {
            self.trace.push(TraceEvent::Start {
                at: self.now,
                job: id,
                gear,
                backfilled,
                first_proc,
            });
        }
        self.emit(|| bsld_obs::TraceEvent::JobStart {
            t: self.now.as_micros(),
            job: u64::from(id.0),
            gear: u64::from(gear.0),
            cpus: u64::from(job.cpus),
            first_proc: u64::from(first_proc),
            backfilled,
        });
        let expected_end = self.now + expected;
        self.running.insert(
            id,
            RunningJob {
                cpus: job.cpus,
                procs,
                start: self.now,
                expected_end,
                gear,
                phase_start: self.now,
                phases: Vec::new(),
                work_done: 0.0,
                requested_done: 0.0,
                epoch: 0,
            },
        );
        *self.end_index.entry(expected_end).or_insert(0) += job.cpus;
        let now = self.now;
        if let Some(h) = self.hook.as_deref_mut() {
            h.on_job_start(now, job.cpus, gear);
        }
        true
    }

    /// Completes `id` at the current time.
    fn complete(&mut self, id: JobId) {
        let mut r = self
            .running
            .remove(&id)
            // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
            .expect("completion of a job that is not running");
        let first_proc = r.procs.first().unwrap_or(0);
        self.emit(|| bsld_obs::TraceEvent::JobFinish {
            t: self.now.as_micros(),
            job: u64::from(id.0),
            first_proc: u64::from(first_proc),
        });
        self.pool.release(&r.procs);
        self.end_index_remove(r.expected_end, r.cpus);
        // Remember the freed window: the next pass pulls the pending
        // release at `expected_end` forward to "now" in place instead of
        // rebuilding the profile.
        self.last_completion = Some((r.expected_end, r.cpus));
        let now = self.now;
        if let Some(h) = self.hook.as_deref_mut() {
            h.on_job_finish(now, r.cpus, r.gear);
        }
        let job = &self.jobs[id.index()];
        let last_secs = self.now - r.phase_start;
        if last_secs > 0 || r.phases.is_empty() {
            r.phases.push(Phase {
                gear: r.gear,
                seconds: last_secs,
            });
        }
        // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
        let first_gear = r.phases.first().expect("at least one phase").gear;
        let outcome = JobOutcome {
            id,
            cpus: job.cpus,
            arrival: job.arrival,
            start: r.start,
            finish: self.now,
            gear: first_gear,
            phases: r.phases,
            nominal_runtime: job.runtime,
            requested: job.requested,
        };
        debug_assert_eq!(outcome.validate(), Ok(()));
        if self.cfg.collect_trace {
            self.trace.push(TraceEvent::Finish {
                at: self.now,
                job: id,
            });
        }
        self.outcomes.push(outcome);
    }

    /// One scheduling pass under the configured discipline.
    fn schedule_pass(&mut self) {
        self.stats.passes += 1;
        let rebuilds_before = self.stats.profile_rebuilds;
        let running_before = self.running.len();
        match self.cfg.mode {
            SchedMode::Easy => self.schedule_pass_easy(),
            SchedMode::Conservative => self.schedule_pass_conservative(),
        }
        self.emit(|| bsld_obs::TraceEvent::Pass {
            t: self.now.as_micros(),
            pass: self.stats.passes + self.stats.passes_skipped,
            started: (self.running.len() - running_before) as u64,
            rebuilt: self.stats.profile_rebuilds > rebuilds_before,
            elided: false,
        });
    }

    /// Removes `cpus` freed at `at` from the sorted running-jobs index.
    fn end_index_remove(&mut self, at: Time, cpus: u32) {
        let entry = self
            .end_index
            .get_mut(&at)
            // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
            .expect("end_index entry for a running job");
        *entry -= cpus;
        if *entry == 0 {
            self.end_index.remove(&at);
        }
    }

    /// Whether the cached committed profile may serve the current instant:
    /// the cache is live, the cached reservation still lies in the future
    /// (a reservation "now" — contiguous-selection fragmentation — must be
    /// re-derived because it would drift as time advances), and no running
    /// job's requested end has been reached (such a release would need to
    /// be pushed to `now + 1`, which only a rebuild does).
    fn cache_usable(&self) -> bool {
        match &self.cache {
            None => false,
            Some(c) => {
                c.start > self.now
                    && self
                        .end_index
                        .keys()
                        .next()
                        .is_none_or(|&first| first > self.now)
            }
        }
    }

    /// Rebuilds the availability profile from the sorted running-jobs
    /// index into the reusable buffer.
    fn rebuild_profile(&mut self) {
        self.stats.profile_rebuilds += 1;
        self.builder
            .reset(self.now, self.pool.total(), self.pool.free_count());
        // A job whose expected end is at or before `now` is still
        // physically running (its completion event sits later in this
        // instant's event batch), so its processors become available
        // strictly after `now`.
        let floor = self.now + 1;
        for (&t, &cpus) in &self.end_index {
            self.builder.release(t.max(floor), cpus);
        }
        self.builder.build_into(&mut self.profile);
    }

    /// Removes `started` — a subsequence of the queue in queue order — in
    /// one O(queue) sweep.
    fn remove_started(&mut self, started: &[JobId]) {
        if started.is_empty() {
            return;
        }
        let mut next = 0;
        self.queue.retain(|&id| {
            if next < started.len() && id == started[next] {
                next += 1;
                false
            } else {
                true
            }
        });
        debug_assert_eq!(next, started.len(), "every started job was queued");
    }

    /// Handles a batch of same-instant arrivals under pass elision: skip
    /// the pass when provably a no-op, evaluate only the new jobs against
    /// the cached committed profile when possible, and fall back to a full
    /// pass otherwise. See the module docs for the safety argument.
    fn pass_after_arrivals(&mut self, batch: &[JobId]) {
        debug_assert!(self.elide && self.hook.is_none());
        let prev_len = self.queue.len() - batch.len();
        if prev_len == 0 {
            // The new head may be able to start immediately: full pass
            // (which also re-establishes the cache).
            self.schedule_pass();
            return;
        }
        // The head is unchanged and still cannot start: nothing has freed
        // processors since the pass that left it queued.
        if !self.cfg.backfill {
            // Without backfilling, an arrival behind a blocked head is
            // inert (the reservation is bookkeeping only).
            self.stats.passes_skipped += 1;
            self.emit(|| bsld_obs::TraceEvent::Pass {
                t: self.now.as_micros(),
                pass: self.stats.passes + self.stats.passes_skipped,
                started: 0,
                rebuilt: false,
                elided: true,
            });
            return;
        }
        if !self.cache_usable() {
            self.schedule_pass();
            return;
        }
        debug_assert_eq!(
            self.cache.map(|c| c.head),
            self.queue.front().copied(),
            "live cache must describe the current head"
        );
        self.profile.advance_origin(self.now);
        // Evaluate only the new arrivals; every older candidate failed
        // against a profile that was no stronger and a wait that was no
        // longer, so by the elision-safety contract it keeps failing.
        let mut started = std::mem::take(&mut self.scratch_started);
        started.clear();
        for &id in batch {
            let job = self.job(id);
            if job.cpus > self.pool.free_count() {
                continue;
            }
            let wq_others = self.queue.len() - 1 - started.len();
            let chosen = {
                let ctx = self.ctx(job, wq_others);
                let tm = self.time_model;
                let now = self.now;
                let profile_ref = &self.profile;
                let mut fits = |gear: GearId| {
                    let dur = tm.dilate(job.requested, job.beta, gear);
                    profile_ref.can_fit(now, job.cpus, dur)
                };
                self.policy.backfill_gear(&ctx, &mut fits)
            };
            if let Some(gear) = chosen {
                if self.try_start_job(id, gear, true) {
                    let dur = self.time_model.dilate(job.requested, job.beta, gear);
                    self.profile
                        .commit(self.now, self.now.saturating_add(dur), job.cpus)
                        // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
                        .expect("policy returned a gear that does not fit");
                    started.push(id);
                }
            }
        }
        if started.is_empty() {
            self.stats.passes_skipped += 1;
            self.emit(|| bsld_obs::TraceEvent::Pass {
                t: self.now.as_micros(),
                pass: self.stats.passes + self.stats.passes_skipped,
                started: 0,
                rebuilt: false,
                elided: true,
            });
        } else {
            self.stats.passes += 1;
            self.remove_started(&started);
            self.debug_check_profile();
            self.emit(|| bsld_obs::TraceEvent::Pass {
                t: self.now.as_micros(),
                pass: self.stats.passes + self.stats.passes_skipped,
                started: started.len() as u64,
                rebuilt: false,
                elided: false,
            });
        }
        started.clear();
        self.scratch_started = started;
    }

    /// Debug-build parity check: the incrementally maintained committed
    /// profile must be extensionally equal (for `t >= now`) to a fresh
    /// rebuild plus the cached reservation.
    #[cfg(debug_assertions)]
    fn debug_check_profile(&self) {
        let Some(c) = &self.cache else { return };
        let mut b = ProfileBuilder::new(self.now, self.pool.total(), self.pool.free_count());
        let floor = self.now + 1;
        for (&t, &cpus) in &self.end_index {
            b.release(t.max(floor), cpus);
        }
        let mut fresh = b.build();
        fresh
            .commit(c.start, c.end, self.jobs[c.head.index()].cpus)
            // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
            .expect("cached reservation must fit a fresh profile");
        let points = std::iter::once(self.now)
            .chain(fresh.segments().iter().map(|&(t, _)| t))
            .chain(self.profile.segments().iter().map(|&(t, _)| t))
            .filter(|&t| t >= self.now);
        for t in points {
            debug_assert_eq!(
                self.profile.available_at(t),
                fresh.available_at(t),
                "incremental profile diverged at {t:?}\nnow={:?}\ncache={:?}\nincr={:?}\nfresh={:?}\nend_index={:?}",
                self.now,
                c,
                self.profile.segments(),
                fresh.segments(),
                self.end_index,
            );
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_profile(&self) {}

    /// One EASY scheduling pass (see module docs).
    fn schedule_pass_easy(&mut self) {
        // Take the completion delta recorded by `complete` (if this pass
        // was triggered by one); it feeds the in-place profile update.
        let completion = self.last_completion.take();
        // Decide up front whether this pass may update the cached profile
        // in place; the guard must be evaluated before step 1 mutates the
        // pool (new running jobs always end strictly after `now`, so the
        // verdict stays valid through the pass). A job that completed
        // exactly at its expected end needs a rebuild: its pending release
        // may sit floored at `now + 1` (same-instant rebuild) while the
        // freed processors belong in the present.
        let in_place = self.elide
            && self.cache_usable()
            && completion.is_none_or(|(expected_end, _)| expected_end > self.now);
        if in_place {
            // Drop fully-elapsed history so the profile stays proportional
            // to the number of running jobs, then release the stale
            // reservation — it is re-derived below — and pull the completed
            // job's pending release forward to the present.
            self.profile.advance_origin(self.now);
            // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
            let c = self.cache.take().expect("cache_usable implies cache");
            self.profile
                .release_over(c.start, c.end, self.jobs[c.head.index()].cpus)
                // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
                .expect("cached reservation lies within the profile");
            if let Some((expected_end, cpus)) = completion {
                self.profile
                    .release_over(self.now, expected_end, cpus)
                    // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
                    .expect("completed job's window lies within the profile");
            }
        } else {
            self.cache = None;
        }

        // Step 1: start head jobs that fit right now.
        while let Some(&head) = self.queue.front() {
            let job = self.job(head);
            if !self.pool.can_allocate(job.cpus, self.cfg.selection) {
                break;
            }
            let wq_others = self.queue.len() - 1;
            let gear = {
                let ctx = self.ctx(job, wq_others);
                self.policy.head_gear(&ctx, self.now)
            };
            // The power hook may down-gear the start or defer the head
            // entirely (it will be retried at the next event, when a
            // completion may have freed budget).
            let Some(gear) = self.hook_admit(job.cpus, gear, wq_others, true) else {
                self.emit(|| bsld_obs::TraceEvent::CapVeto {
                    t: self.now.as_micros(),
                    job: u64::from(head.0),
                    site: bsld_obs::VetoSite::Head,
                });
                break;
            };
            self.queue.pop_front();
            let ok = self.try_start_job(head, gear, false);
            debug_assert!(ok, "can_allocate promised the head would fit");
            if in_place {
                // Mirror the start into the live profile: busy until the
                // job's expected (requested) end, exactly what a rebuild
                // would derive.
                let end = self.running[&head].expected_end;
                self.profile
                    .commit(self.now, end, job.cpus)
                    // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
                    .expect("started job's window fits the profile");
            }
        }
        let Some(&head) = self.queue.front() else {
            self.cache = None;
            return;
        };

        if !self.cfg.backfill && !self.cfg.collect_trace && self.cfg.incremental {
            // Without backfilling the reservation constrains nothing (the
            // head's actual start happens in step 1 of a later pass), so
            // deriving it would be bookkeeping for no observer.
            self.cache = None;
            return;
        }

        // Step 2: reserve for the head on the profile of running jobs.
        if !in_place {
            self.rebuild_profile();
        }
        let head_job = self.job(head);
        let res_start = self
            .profile
            .earliest_fit(head_job.cpus, 1, self.now)
            // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
            .expect("head job fits an empty machine");
        // Under count-complete selection policies step 1 already started
        // every head that fits now. Contiguous selection can be blocked by
        // fragmentation even when the count fits, in which case the
        // (count-based) reservation legitimately starts "now" and the head
        // retries at the next completion event.
        debug_assert!(
            res_start > self.now
                || self.cfg.selection == SelectionPolicy::ContiguousFirstFit
                || self.hook.is_some(),
            "head start now is handled in step 1"
        );
        let wq_others = self.queue.len() - 1;
        let res_gear = {
            let ctx = self.ctx(head_job, wq_others);
            self.policy.head_gear(&ctx, res_start)
        };
        let res_dur = self
            .time_model
            .dilate(head_job.requested, head_job.beta, res_gear);
        let res_end = res_start.saturating_add(res_dur);
        self.profile
            .commit(res_start, res_end, head_job.cpus)
            // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
            .expect("reservation fits by construction");
        if self.elide {
            self.cache = Some(HeadReservation {
                head,
                start: res_start,
                end: res_end,
            });
        }
        if self.cfg.collect_trace {
            self.trace.push(TraceEvent::Reserve {
                at: self.now,
                job: head,
                start: res_start,
                gear: res_gear,
            });
        }

        if !self.cfg.backfill {
            return;
        }

        // Step 3: backfill the rest of the queue in arrival order.
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        candidates.extend(self.queue.iter().skip(1).copied());
        let mut started = std::mem::take(&mut self.scratch_started);
        started.clear();
        for &id in &candidates {
            let job = self.job(id);
            if job.cpus > self.pool.free_count() {
                continue;
            }
            let wq_others = self.queue.len() - 1 - started.len();
            let chosen = {
                let ctx = self.ctx(job, wq_others);
                let tm = self.time_model;
                let now = self.now;
                let profile_ref = &self.profile;
                let mut fits = |gear: GearId| {
                    let dur = tm.dilate(job.requested, job.beta, gear);
                    profile_ref.can_fit(now, job.cpus, dur)
                };
                self.policy.backfill_gear(&ctx, &mut fits)
            };
            if let Some(gear) = chosen {
                let Some(admitted) = self.hook_admit(job.cpus, gear, wq_others, false) else {
                    self.emit(|| bsld_obs::TraceEvent::CapVeto {
                        t: self.now.as_micros(),
                        job: u64::from(id.0),
                        site: bsld_obs::VetoSite::Backfill,
                    });
                    continue;
                };
                if admitted != gear {
                    // A down-geared backfill runs longer; it must still fit
                    // in front of the reservation or the job stays queued.
                    let dur = self.time_model.dilate(job.requested, job.beta, admitted);
                    if !self.profile.can_fit(self.now, job.cpus, dur) {
                        self.hook_declined();
                        self.emit(|| bsld_obs::TraceEvent::CapVeto {
                            t: self.now.as_micros(),
                            job: u64::from(id.0),
                            site: bsld_obs::VetoSite::Backfill,
                        });
                        continue;
                    }
                }
                if self.try_start_job(id, admitted, true) {
                    let dur = self.time_model.dilate(job.requested, job.beta, admitted);
                    self.profile
                        .commit(self.now, self.now.saturating_add(dur), job.cpus)
                        // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
                        .expect("policy returned a gear that does not fit");
                    started.push(id);
                } else {
                    self.hook_declined();
                }
            }
        }
        self.remove_started(&started);
        if in_place {
            self.debug_check_profile();
        }
        candidates.clear();
        started.clear();
        self.scratch_candidates = candidates;
        self.scratch_started = started;
    }

    /// One conservative-backfilling pass: every queued job receives an
    /// earliest-fit reservation in arrival order (duration-aware per gear,
    /// via [`FrequencyPolicy::reserve_gear`]); jobs whose reservation
    /// starts now begin executing. Conservative passes always rebuild the
    /// profile (every queued job's reservation depends on every other), but
    /// share the incremental engine's sorted index, reusable buffers and
    /// O(queue) removal.
    fn schedule_pass_conservative(&mut self) {
        self.last_completion = None;
        self.rebuild_profile();

        let mut snapshot = std::mem::take(&mut self.scratch_candidates);
        snapshot.clear();
        snapshot.extend(self.queue.iter().copied());
        let mut started = std::mem::take(&mut self.scratch_started);
        started.clear();
        let mut earlier_still_waiting = false;
        for &id in &snapshot {
            let job = self.job(id);
            let wq_others = self.queue.len() - 1 - started.len();
            let (gear, start) = {
                let ctx = self.ctx(job, wq_others);
                let tm = self.time_model;
                let now = self.now;
                let profile_ref = &self.profile;
                let mut find_start = |g: GearId| {
                    let dur = tm.dilate(job.requested, job.beta, g);
                    profile_ref
                        .earliest_fit(job.cpus, dur, now)
                        // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
                        .expect("every job fits an empty machine eventually")
                };
                self.policy.reserve_gear(&ctx, &mut find_start)
            };
            // The power hook may defer a start-now decision; the job keeps
            // its reservation (committed below) and is retried next event.
            // A down-geared admission runs longer than the window priced at
            // `gear`, so it is honored only if the longer window still fits
            // the committed profile; otherwise the job waits at its
            // original reservation.
            let admitted = if start == self.now {
                match self.hook_admit(job.cpus, gear, wq_others, !earlier_still_waiting) {
                    Some(g) if g == gear => Some(g),
                    Some(g) => {
                        let dur = self.time_model.dilate(job.requested, job.beta, g);
                        if self.profile.can_fit(self.now, job.cpus, dur) {
                            Some(g)
                        } else {
                            self.hook_declined();
                            self.emit(|| bsld_obs::TraceEvent::CapVeto {
                                t: self.now.as_micros(),
                                job: u64::from(id.0),
                                site: bsld_obs::VetoSite::Conservative,
                            });
                            None
                        }
                    }
                    None => {
                        self.emit(|| bsld_obs::TraceEvent::CapVeto {
                            t: self.now.as_micros(),
                            job: u64::from(id.0),
                            site: bsld_obs::VetoSite::Conservative,
                        });
                        None
                    }
                }
            } else {
                None
            };
            let can_start = match admitted {
                Some(g) => {
                    let ok = self.try_start_job(id, g, earlier_still_waiting);
                    if !ok {
                        self.hook_declined();
                    }
                    ok
                }
                None => false,
            };
            let commit_gear = if can_start {
                // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
                admitted.expect("start implies admission")
            } else {
                gear
            };
            let dur = self.time_model.dilate(job.requested, job.beta, commit_gear);
            self.profile
                .commit(start, start.saturating_add(dur), job.cpus)
                // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
                .expect("reserve_gear start came from earliest_fit");
            if can_start {
                started.push(id);
            } else {
                earlier_still_waiting = true;
                if self.cfg.collect_trace {
                    self.trace.push(TraceEvent::Reserve {
                        at: self.now,
                        job: id,
                        start,
                        gear,
                    });
                }
            }
        }
        self.remove_started(&started);
        snapshot.clear();
        started.clear();
        self.scratch_candidates = snapshot;
        self.scratch_started = started;
    }

    /// Dynamic-boost extension: re-time running reduced jobs to the top
    /// gear when the queue is too deep.
    fn maybe_boost(&mut self) {
        let Some(boost) = self.cfg.boost else {
            return;
        };
        if self.queue.len() <= boost.wq_limit {
            return;
        }
        let ids: Vec<(JobId, GearId, u32)> = self
            .running
            .iter()
            .filter(|(_, r)| r.gear < self.top)
            .map(|(&id, r)| (id, r.gear, r.cpus))
            .collect();
        for (id, from, cpus) in ids {
            let now = self.now;
            let top = self.top;
            if let Some(h) = self.hook.as_deref_mut() {
                // A boost raises draw; the power hook may veto it.
                if !h.admit_gear_change(now, cpus, from, top) {
                    self.emit(|| bsld_obs::TraceEvent::BoostVeto {
                        t: now.as_micros(),
                        job: u64::from(id.0),
                    });
                    continue;
                }
            }
            self.retime_to(id, top);
            if self.cfg.collect_trace {
                self.trace.push(TraceEvent::Boost {
                    at: self.now,
                    job: id,
                    from,
                });
            }
            self.emit(|| bsld_obs::TraceEvent::Boost {
                t: now.as_micros(),
                job: u64::from(id.0),
                gear: u64::from(top.0),
            });
        }
    }

    /// Switches running job `id` to `gear` at the current instant,
    /// converting completed work through the β model and rescheduling its
    /// completion event.
    fn retime_to(&mut self, id: JobId, gear: GearId) {
        let job = &self.jobs[id.index()];
        let r = self
            .running
            .get_mut(&id)
            // audit:allow(R1): scheduler state invariant; the expect message states it, and the determinism suite exercises these paths
            .expect("retime of a job that is not running");
        if r.gear == gear {
            return;
        }
        let elapsed = self.now - r.phase_start;
        let coef_old = self.time_model.coef(job.beta, r.gear);
        r.work_done += elapsed as f64 / coef_old;
        r.requested_done += elapsed as f64 / coef_old;
        if elapsed > 0 {
            r.phases.push(Phase {
                gear: r.gear,
                seconds: elapsed,
            });
        }
        let remaining_work = (job.runtime as f64 - r.work_done).max(0.0);
        let remaining_requested = (job.requested as f64 - r.requested_done).max(remaining_work);
        let wall = self
            .time_model
            .wall_for_work(remaining_work, job.beta, gear)
            .max(1);
        let expected_wall = self
            .time_model
            .wall_for_work(remaining_requested, job.beta, gear)
            .max(wall);
        let from = r.gear;
        let cpus = r.cpus;
        let old_expected_end = r.expected_end;
        r.gear = gear;
        r.phase_start = self.now;
        r.expected_end = self.now + expected_wall;
        r.epoch += 1;
        let epoch = r.epoch;
        let new_expected_end = r.expected_end;
        self.end_index_remove(old_expected_end, cpus);
        *self.end_index.entry(new_expected_end).or_insert(0) += cpus;
        // A re-time moves the job's pending release; the cached profile no
        // longer matches (boost disables elision, but stay defensive).
        self.cache = None;
        self.events.push(self.now + wall, Event::Finish(id, epoch));
        let now = self.now;
        if let Some(h) = self.hook.as_deref_mut() {
            h.on_gear_change(now, cpus, from, gear);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedGearPolicy;
    use bsld_cluster::GearSet;

    fn cluster(cpus: u32) -> Cluster {
        Cluster::new("test", cpus, GearSet::paper())
    }

    fn tm() -> BetaModel {
        BetaModel::new(GearSet::paper())
    }

    fn top_policy() -> FixedGearPolicy {
        FixedGearPolicy::new(GearSet::paper().top())
    }

    /// j(id, arrival, cpus, runtime, requested)
    fn j(id: u32, arrival: u64, cpus: u32, runtime: u64, requested: u64) -> Job {
        Job::new(id, Time(arrival), cpus, runtime, requested)
    }

    fn run(cluster_cpus: u32, jobs: &[Job]) -> SimResult {
        let tm = tm();
        simulate(
            &cluster(cluster_cpus),
            jobs,
            &top_policy(),
            &tm,
            &EngineConfig {
                collect_trace: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn start_of(res: &SimResult, id: u32) -> Time {
        res.outcomes
            .iter()
            .find(|o| o.id == JobId(id))
            .unwrap()
            .start
    }

    #[test]
    fn single_job_starts_immediately() {
        let res = run(4, &[j(0, 10, 4, 100, 200)]);
        assert_eq!(res.outcomes.len(), 1);
        let o = &res.outcomes[0];
        assert_eq!(o.start, Time(10));
        assert_eq!(o.finish, Time(110));
        assert_eq!(res.makespan, Time(110));
    }

    #[test]
    fn fcfs_order_without_contention() {
        let jobs = vec![j(0, 0, 2, 100, 100), j(1, 5, 2, 100, 100)];
        let res = run(4, &jobs);
        assert_eq!(start_of(&res, 0), Time(0));
        assert_eq!(start_of(&res, 1), Time(5));
    }

    #[test]
    fn backfill_short_job_around_reservation() {
        // 4 cpus. J0 takes 3 cpus until t=100. J1 (head) needs 4 → reserved
        // at t=100. J2 (1 cpu, 50 s) fits before the reservation → backfills
        // at t=2. J3 (1 cpu, 200 s) would delay the reservation → waits.
        let jobs = vec![
            j(0, 0, 3, 100, 100),
            j(1, 1, 4, 100, 100),
            j(2, 2, 1, 50, 50),
            j(3, 3, 1, 200, 200),
        ];
        let res = run(4, &jobs);
        assert_eq!(start_of(&res, 0), Time(0));
        assert_eq!(start_of(&res, 1), Time(100));
        assert_eq!(start_of(&res, 2), Time(2), "J2 must backfill");
        assert_eq!(start_of(&res, 3), Time(200), "J3 must wait for the head");
        let backfilled: Vec<bool> = res
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Start {
                    job, backfilled, ..
                } if *job == JobId(2) => Some(*backfilled),
                _ => None,
            })
            .collect();
        assert_eq!(backfilled, vec![true]);
    }

    #[test]
    fn no_backfill_config_degrades_to_fcfs() {
        let jobs = vec![
            j(0, 0, 3, 100, 100),
            j(1, 1, 4, 100, 100),
            j(2, 2, 1, 50, 50),
        ];
        let tmm = tm();
        let res = simulate(
            &cluster(4),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig {
                backfill: false,
                ..Default::default()
            },
        )
        .unwrap();
        let s2 = res
            .outcomes
            .iter()
            .find(|o| o.id == JobId(2))
            .unwrap()
            .start;
        assert_eq!(s2, Time(200), "without backfilling J2 waits behind J1");
    }

    #[test]
    fn backfill_crossing_shadow_on_extra_processors() {
        // 4 cpus. J0 holds 2 until t=100. J1 (head, 3 cpus) reserved at 100.
        // J2 (1 cpu, 500 s) crosses the shadow time but uses the processor
        // the reservation leaves spare → must backfill at its arrival.
        let jobs = vec![
            j(0, 0, 2, 100, 100),
            j(1, 1, 3, 100, 100),
            j(2, 2, 1, 500, 500),
        ];
        let res = run(4, &jobs);
        assert_eq!(start_of(&res, 1), Time(100));
        assert_eq!(start_of(&res, 2), Time(2));
    }

    #[test]
    fn early_finish_reschedules_queue() {
        // J0 requests 1000 s but runs 10 s; J1 starts at t=10, not t=1000.
        let jobs = vec![j(0, 0, 4, 10, 1000), j(1, 1, 4, 50, 50)];
        let res = run(4, &jobs);
        assert_eq!(start_of(&res, 1), Time(10));
    }

    #[test]
    fn easy_guarantee_backfill_never_delays_head() {
        // Adversarial mix of backfill candidates; the head's start must
        // equal its start when backfilling is disabled.
        let jobs = vec![
            j(0, 0, 5, 100, 120),
            j(1, 1, 8, 200, 250), // head once J0 runs
            j(2, 2, 2, 40, 60),
            j(3, 3, 3, 90, 100),
            j(4, 4, 1, 500, 700),
            j(5, 5, 2, 10, 20),
        ];
        let tmm = tm();
        let with_bf = run(8, &jobs);
        let without_bf = simulate(
            &cluster(8),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig {
                backfill: false,
                ..Default::default()
            },
        )
        .unwrap();
        let head_with = with_bf
            .outcomes
            .iter()
            .find(|o| o.id == JobId(1))
            .unwrap()
            .start;
        let head_without = without_bf
            .outcomes
            .iter()
            .find(|o| o.id == JobId(1))
            .unwrap()
            .start;
        assert!(
            head_with <= head_without,
            "backfilling delayed the head: {head_with:?} > {head_without:?}"
        );
    }

    #[test]
    fn first_fit_takes_lowest_processors() {
        let jobs = vec![j(0, 0, 3, 100, 100), j(1, 0, 2, 100, 100)];
        let res = run(8, &jobs);
        let firsts: Vec<u32> = res
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Start { first_proc, .. } => Some(*first_proc),
                _ => None,
            })
            .collect();
        assert_eq!(firsts, vec![0, 3]);
    }

    #[test]
    fn simultaneous_finishes_are_deterministic() {
        let jobs = vec![
            j(0, 0, 2, 100, 100),
            j(1, 0, 2, 100, 100),
            j(2, 1, 4, 50, 50),
        ];
        let a = run(4, &jobs);
        let b = run(4, &jobs);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(start_of(&a, 2), Time(100));
    }

    #[test]
    fn rejects_oversize_job() {
        let tmm = tm();
        let err = simulate(
            &cluster(4),
            &[j(0, 0, 5, 10, 10)],
            &top_policy(),
            &tmm,
            &EngineConfig::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::JobTooLarge {
                job: JobId(0),
                cpus: 5,
                total: 4
            }
        );
        assert!(err.to_string().contains("5 cpus"));
    }

    #[test]
    fn rejects_unsorted_arrivals() {
        let tmm = tm();
        let err = simulate(
            &cluster(4),
            &[j(0, 10, 1, 10, 10), j(1, 5, 1, 10, 10)],
            &top_policy(),
            &tmm,
            &EngineConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::ArrivalsNotSorted);
    }

    #[test]
    fn reduced_gear_dilates_runtime() {
        // Pin everything to the lowest gear: runtimes stretch by Coef(0.8).
        let tmm = tm();
        let low = FixedGearPolicy::new(GearId(0));
        let res = simulate(
            &cluster(4),
            &[j(0, 0, 4, 1000, 1000)],
            &low,
            &tmm,
            &EngineConfig::default(),
        )
        .unwrap();
        let o = &res.outcomes[0];
        assert_eq!(o.penalized_runtime(), tmm.dilate(1000, 0.5, GearId(0)));
        assert_eq!(o.gear, GearId(0));
        assert!(o.was_reduced(GearSet::paper().top()));
    }

    #[test]
    fn boost_retimes_running_reduced_job() {
        // One reduced job running alone; then a burst of arrivals deepens
        // the queue past wq_limit=0 and triggers a boost.
        let tmm = tm();
        let low = FixedGearPolicy::new(GearId(0));
        let jobs = vec![
            j(0, 0, 4, 1000, 1000),
            // Two arrivals at t=500 → queue depth 2 > 0 after the pass
            // (neither fits while J0 holds the machine).
            j(1, 500, 4, 10, 10),
            j(2, 500, 4, 10, 10),
        ];
        let res = simulate(
            &cluster(4),
            &jobs,
            &low,
            &tmm,
            &EngineConfig {
                boost: Some(BoostConfig { wq_limit: 1 }),
                collect_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        let o0 = res.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        assert_eq!(
            o0.phases.len(),
            2,
            "boost must split execution into two phases"
        );
        assert_eq!(o0.phases[0].gear, GearId(0));
        assert_eq!(o0.phases[1].gear, GearSet::paper().top());
        // Boosted at t=500: 500 wall s at Coef≈1.9375 ⇒ ≈258 work-s done;
        // remaining ≈742 work-s at top ⇒ finish ≈ 500+742, well before the
        // un-boosted 1937.
        assert!(
            o0.finish < Time(1937),
            "boost must shorten the job: {:?}",
            o0.finish
        );
        assert!(res
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Boost { job, .. } if *job == JobId(0))));
        o0.validate().unwrap();
    }

    #[test]
    fn boost_does_not_fire_below_limit() {
        let tmm = tm();
        let low = FixedGearPolicy::new(GearId(0));
        let jobs = vec![j(0, 0, 4, 1000, 1000), j(1, 500, 4, 10, 10)];
        let res = simulate(
            &cluster(4),
            &jobs,
            &low,
            &tmm,
            &EngineConfig {
                boost: Some(BoostConfig { wq_limit: 1 }),
                collect_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        let o0 = res.outcomes.iter().find(|o| o.id == JobId(0)).unwrap();
        assert_eq!(o0.phases.len(), 1, "queue depth 1 must not trigger a boost");
    }

    #[test]
    fn conservative_protects_queued_reservations() {
        // 4 cpus. J0 (2 cpus) runs [0,100). J1 (3 cpus) is the head,
        // reserved [100,200). J2 (4 cpus) queues behind; J3 (1 cpu, 250 s)
        // arrives last.
        //
        // EASY backfills J3 immediately (it cannot delay the *head*), which
        // pushes J2 from 200 to 253. Conservative gives J2 its own
        // reservation at [200,300), so J3 must wait until 300.
        let jobs = vec![
            j(0, 0, 2, 100, 100),
            j(1, 1, 3, 100, 100),
            j(2, 2, 4, 100, 100),
            j(3, 3, 1, 250, 250),
        ];
        let tmm = tm();
        let easy = run(4, &jobs);
        let cons = simulate(
            &cluster(4),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig {
                mode: SchedMode::Conservative,
                collect_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(start_of(&easy, 3), Time(3), "EASY backfills the small job");
        assert_eq!(
            start_of(&easy, 2),
            Time(253),
            "EASY delays the queued wide job"
        );
        let cons_start = |id: u32| {
            cons.outcomes
                .iter()
                .find(|o| o.id == JobId(id))
                .unwrap()
                .start
        };
        assert_eq!(
            cons_start(2),
            Time(200),
            "conservative protects J2's reservation"
        );
        assert_eq!(
            cons_start(3),
            Time(300),
            "conservative delays the small job"
        );
        crate::validate::validate_schedule(&cons.outcomes, 4).unwrap();
    }

    #[test]
    fn conservative_matches_easy_on_contention_free_load() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| j(i, (i as u64) * 500, 2, 100, 150))
            .collect();
        let tmm = tm();
        let easy = run(8, &jobs);
        let cons = simulate(
            &cluster(8),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig {
                mode: SchedMode::Conservative,
                ..Default::default()
            },
        )
        .unwrap();
        for o in &easy.outcomes {
            let c = cons.outcomes.iter().find(|x| x.id == o.id).unwrap();
            assert_eq!(o.start, c.start, "{}: no queueing ⇒ same schedule", o.id);
        }
    }

    #[test]
    fn conservative_reschedules_on_early_finish() {
        let jobs = vec![j(0, 0, 4, 10, 1000), j(1, 1, 4, 50, 50)];
        let tmm = tm();
        let res = simulate(
            &cluster(4),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig {
                mode: SchedMode::Conservative,
                ..Default::default()
            },
        )
        .unwrap();
        let s1 = res
            .outcomes
            .iter()
            .find(|o| o.id == JobId(1))
            .unwrap()
            .start;
        assert_eq!(
            s1,
            Time(10),
            "reservations must be re-derived on early completion"
        );
    }

    #[test]
    fn contiguous_selection_fragmentation_delays_jobs() {
        // 4 cpus. Long jobs pin processors 0 and 2; short jobs hold 1 and 3
        // until t=10. At t=10 two processors are free but not adjacent:
        // First Fit starts the 2-cpu job at 10, contiguous selection must
        // wait for the long jobs to finish at t=1000.
        let jobs = vec![
            j(0, 0, 1, 1000, 1000), // proc 0
            j(1, 0, 1, 10, 10),     // proc 1
            j(2, 0, 1, 1000, 1000), // proc 2
            j(3, 0, 1, 10, 10),     // proc 3
            j(4, 5, 2, 20, 20),     // needs two processors
        ];
        let tmm = tm();
        let ff = run(4, &jobs);
        assert_eq!(start_of(&ff, 4), Time(10));
        let contig = simulate(
            &cluster(4),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig {
                selection: SelectionPolicy::ContiguousFirstFit,
                collect_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        let s4 = contig
            .outcomes
            .iter()
            .find(|o| o.id == JobId(4))
            .unwrap()
            .start;
        assert_eq!(
            s4,
            Time(1000),
            "fragmentation must block contiguous selection"
        );
        crate::validate::validate_schedule(&contig.outcomes, 4).unwrap();
        // The allocation it finally gets is one contiguous range.
        let first_procs: Vec<u32> = contig
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Start {
                    job, first_proc, ..
                } if *job == JobId(4) => Some(*first_proc),
                _ => None,
            })
            .collect();
        assert_eq!(first_procs.len(), 1);
    }

    #[test]
    fn last_fit_selection_allocates_from_the_top() {
        let jobs = vec![j(0, 0, 2, 10, 10)];
        let tmm = tm();
        let res = simulate(
            &cluster(8),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig {
                selection: SelectionPolicy::LastFit,
                collect_trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        let first = res
            .trace
            .iter()
            .find_map(|e| match e {
                TraceEvent::Start { first_proc, .. } => Some(*first_proc),
                _ => None,
            })
            .unwrap();
        assert_eq!(first, 6, "LastFit must pick processors 6 and 7");
    }

    #[test]
    fn conservative_is_deterministic() {
        let jobs: Vec<Job> = (0..40)
            .map(|i| j(i, (i as u64) * 13, 1 + (i % 5), 30 + (i as u64 % 200), 400))
            .collect();
        let tmm = tm();
        let mk = || {
            simulate(
                &cluster(8),
                &jobs,
                &top_policy(),
                &tmm,
                &EngineConfig {
                    mode: SchedMode::Conservative,
                    ..Default::default()
                },
            )
            .unwrap()
            .outcomes
        };
        assert_eq!(mk(), mk());
    }

    /// A hook that down-gears every start to gear 0 (admits nothing at
    /// the proposed gear).
    struct DowngearHook {
        declined: u32,
    }

    impl crate::hook::PowerHook for DowngearHook {
        fn on_time(&mut self, _now: Time) {}

        fn admit_start(
            &mut self,
            _now: Time,
            _cpus: u32,
            _gear: GearId,
            _wq: usize,
            _head: bool,
        ) -> Option<GearId> {
            Some(GearId(0))
        }

        fn admission_declined(&mut self) {
            self.declined += 1;
        }

        fn admit_gear_change(&mut self, _now: Time, _c: u32, _f: GearId, _t: GearId) -> bool {
            true
        }

        fn on_job_start(&mut self, _now: Time, _cpus: u32, _gear: GearId) {}

        fn on_job_finish(&mut self, _now: Time, _cpus: u32, _gear: GearId) {}

        fn on_gear_change(&mut self, _now: Time, _c: u32, _f: GearId, _t: GearId) {}
    }

    #[test]
    fn conservative_honors_downgeared_admissions() {
        // A down-geared start-now must be honored when the longer window
        // fits the profile — the run completes with every job at gear 0
        // instead of stalling.
        let jobs = vec![j(0, 0, 2, 100, 100), j(1, 10, 4, 50, 50)];
        let tmm = tm();
        let mut hook = DowngearHook { declined: 0 };
        let res = crate::engine::simulate_with_hook(
            &cluster(4),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig {
                mode: SchedMode::Conservative,
                ..Default::default()
            },
            &mut hook,
        )
        .unwrap();
        assert_eq!(res.outcomes.len(), 2, "no stall");
        for o in &res.outcomes {
            assert_eq!(
                o.gear,
                GearId(0),
                "{}: start must use the admitted gear",
                o.id
            );
        }
        crate::validate::validate_schedule(&res.outcomes, 4).unwrap();
    }

    #[test]
    fn easy_honors_downgeared_admissions() {
        let jobs = vec![j(0, 0, 4, 100, 100), j(1, 1, 1, 10, 10)];
        let tmm = tm();
        let mut hook = DowngearHook { declined: 0 };
        let res = crate::engine::simulate_with_hook(
            &cluster(4),
            &jobs,
            &top_policy(),
            &tmm,
            &EngineConfig::default(),
            &mut hook,
        )
        .unwrap();
        assert_eq!(res.outcomes.len(), 2);
        for o in &res.outcomes {
            assert_eq!(o.gear, GearId(0));
        }
    }

    #[test]
    fn overrunning_job_killed_at_request() {
        // A directly constructed job whose runtime exceeds the estimate
        // (real traces contain these) is killed at its requested time.
        let mut job = j(0, 0, 2, 100, 100);
        job.runtime = 500; // overrun past the 100 s estimate
        let res = run(4, &[job]);
        let o = &res.outcomes[0];
        assert_eq!(o.finish, Time(100), "killed at the dilated request");
        o.validate().unwrap();
        // A later job sees the processors free at the kill time.
        let mut over = j(0, 0, 4, 100, 100);
        over.runtime = 999;
        let jobs = vec![over, j(1, 10, 4, 50, 50)];
        let res = run(4, &jobs);
        assert_eq!(start_of(&res, 1), Time(100));
    }

    /// A workload mixing bursts, contention, exact estimates, overruns and
    /// early finishes — the A/B stress shape.
    fn ab_workload(n: u32) -> Vec<Job> {
        (0..n)
            .map(|i| {
                let arrival = (i as u64 / 3) * 7; // same-instant bursts of 3
                let cpus = 1 + i % 7;
                let runtime = 20 + (i as u64 * 37) % 400;
                let requested = if i % 5 == 0 {
                    runtime // exact estimate
                } else {
                    runtime + (i as u64 * 13) % 600
                };
                j(i, arrival, cpus, runtime, requested)
            })
            .collect()
    }

    fn run_with(jobs: &[Job], cpus: u32, cfg: &EngineConfig) -> SimResult {
        let tmm = tm();
        simulate(&cluster(cpus), jobs, &top_policy(), &tmm, cfg).unwrap()
    }

    #[test]
    fn incremental_matches_full_rescan_easy() {
        let jobs = ab_workload(120);
        let incr = run_with(&jobs, 8, &EngineConfig::default());
        let full = run_with(
            &jobs,
            8,
            &EngineConfig {
                incremental: false,
                ..Default::default()
            },
        );
        assert_eq!(
            incr.outcomes, full.outcomes,
            "outcomes must be bit-identical"
        );
        assert_eq!(full.stats.passes_skipped, 0);
        assert!(
            incr.stats.profile_rebuilds < full.stats.profile_rebuilds,
            "incremental must rebuild less: {} vs {}",
            incr.stats.profile_rebuilds,
            full.stats.profile_rebuilds
        );
        assert!(incr.stats.passes_skipped > 0, "saturation must skip passes");
    }

    #[test]
    fn incremental_matches_full_rescan_conservative() {
        let jobs = ab_workload(100);
        let mk = |incremental| {
            run_with(
                &jobs,
                8,
                &EngineConfig {
                    mode: SchedMode::Conservative,
                    incremental,
                    ..Default::default()
                },
            )
        };
        assert_eq!(mk(true).outcomes, mk(false).outcomes);
    }

    #[test]
    fn incremental_matches_full_rescan_without_backfill() {
        let jobs = ab_workload(90);
        let mk = |incremental| {
            run_with(
                &jobs,
                8,
                &EngineConfig {
                    backfill: false,
                    incremental,
                    ..Default::default()
                },
            )
        };
        let incr = mk(true);
        let full = mk(false);
        assert_eq!(incr.outcomes, full.outcomes);
        assert_eq!(
            incr.stats.profile_rebuilds, 0,
            "FCFS reservations are bookkeeping only; no rebuild needed"
        );
        assert!(full.stats.profile_rebuilds > 0);
    }

    #[test]
    fn incremental_matches_full_under_reduced_gear_policy() {
        // A fixed reduced gear dilates every duration; elision still holds.
        let jobs = ab_workload(80);
        let tmm = tm();
        let low = FixedGearPolicy::new(GearId(1));
        let mk = |incremental| {
            simulate(
                &cluster(8),
                &jobs,
                &low,
                &tmm,
                &EngineConfig {
                    incremental,
                    ..Default::default()
                },
            )
            .unwrap()
            .outcomes
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn contiguous_selection_disables_stale_reservations() {
        // Fragmentation forces reservations that start "now"; the cache
        // must refuse to reuse them and outcomes must stay identical.
        let jobs = ab_workload(60);
        let mk = |incremental| {
            run_with(
                &jobs,
                8,
                &EngineConfig {
                    selection: SelectionPolicy::ContiguousFirstFit,
                    incremental,
                    ..Default::default()
                },
            )
        };
        assert_eq!(mk(true).outcomes, mk(false).outcomes);
    }

    #[test]
    fn trace_collection_forces_full_passes() {
        // collect_trace must keep per-event Reserve records: no elision.
        let jobs = ab_workload(40);
        let res = run_with(
            &jobs,
            8,
            &EngineConfig {
                collect_trace: true,
                ..Default::default()
            },
        );
        assert_eq!(res.stats.passes_skipped, 0);
    }

    #[test]
    fn outcome_count_matches_jobs() {
        let jobs: Vec<Job> = (0..50)
            .map(|i| j(i, (i as u64) * 7, 1 + (i % 4), 50 + (i as u64 % 90), 200))
            .collect();
        let res = run(8, &jobs);
        assert_eq!(res.outcomes.len(), jobs.len());
        for o in &res.outcomes {
            o.validate().unwrap();
        }
    }

    #[test]
    fn raised_abort_flag_stops_the_run_at_the_first_event() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let jobs: Vec<Job> = (0..10).map(|i| j(i, i as u64, 1, 100, 200)).collect();
        let flag = Arc::new(AtomicBool::new(true));
        let err = simulate(
            &cluster(8),
            &jobs,
            &top_policy(),
            &tm(),
            &EngineConfig {
                abort: Some(Arc::clone(&flag)),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, SimError::Aborted);
        // An unraised flag changes nothing: outcomes match the flagless run.
        flag.store(false, std::sync::atomic::Ordering::SeqCst);
        let watched = simulate(
            &cluster(8),
            &jobs,
            &top_policy(),
            &tm(),
            &EngineConfig {
                abort: Some(flag),
                ..Default::default()
            },
        )
        .unwrap();
        let plain = run(8, &jobs);
        assert_eq!(watched.outcomes, plain.outcomes);
    }
}
