//! The power-management hook.
//!
//! [`PowerHook`] is the engine's second policy surface, next to
//! [`crate::FrequencyPolicy`]: where the frequency policy picks a DVFS gear
//! per job from performance predictions alone, a power hook observes every
//! power-relevant event (starts, completions, mid-run gear changes, time
//! advancing) and may **veto or down-gear** a start or boost decision.
//! `bsld-powercap` implements it to track instantaneous cluster draw and
//! enforce cluster-level power budgets with idle sleep states; the engine
//! itself knows nothing about watts.
//!
//! # Contract
//!
//! * [`PowerHook::on_time`] is called whenever simulation time advances to
//!   an event instant, before any scheduling at that instant; it may be
//!   called repeatedly with the same time (once per event in an instant's
//!   batch) and must be idempotent per instant.
//! * [`PowerHook::admit_start`] is consulted immediately before a job would
//!   start. Returning `Some(g)` admits the job at gear `g` (which must be
//!   `<=` the proposed gear — admission may only *reduce* frequency);
//!   returning `None` defers the job (it stays queued and is retried at the
//!   next event). The engine re-checks profile fit when a backfill
//!   candidate is down-geared.
//! * [`PowerHook::admit_gear_change`] gates mid-run re-times (the dynamic
//!   boost extension): returning `false` skips the boost for that job.
//! * The `on_job_start` / `on_job_finish` / `on_gear_change` notifications
//!   fire after the corresponding state change is committed, exactly once
//!   per change, with the gear the job is entering/leaving.
//!
//! Deferrals are safe from livelock because cluster power only changes at
//! event boundaries and every event triggers a fresh scheduling pass; a
//! run that can never proceed (a budget below a single job's minimum draw)
//! terminates with [`crate::SimError::Stalled`] instead of looping.

use bsld_model::GearId;
use bsld_simkernel::Time;

/// Observes and gates power-relevant scheduling decisions. See the module
/// docs for the exact calling contract.
pub trait PowerHook {
    /// Simulation time advanced to `now` (idempotent per instant).
    fn on_time(&mut self, now: Time);

    /// May veto (`None`) or down-gear a start decision. `head` is true for
    /// the head of the wait queue, false for backfill candidates.
    fn admit_start(
        &mut self,
        now: Time,
        cpus: u32,
        gear: GearId,
        wq_others: usize,
        head: bool,
    ) -> Option<GearId>;

    /// The engine could not honor the gear returned by the immediately
    /// preceding [`PowerHook::admit_start`] (a down-geared duration no
    /// longer fit the backfill window or the committed profile, or the
    /// selection policy could not serve the allocation): the start did
    /// **not** happen. Hooks that count admissions should reverse the
    /// corresponding bookkeeping here.
    fn admission_declined(&mut self) {}

    /// May veto a mid-run gear change (dynamic boost).
    fn admit_gear_change(&mut self, now: Time, cpus: u32, from: GearId, to: GearId) -> bool;

    /// A job began executing `cpus` processors at `gear`.
    fn on_job_start(&mut self, now: Time, cpus: u32, gear: GearId);

    /// A job released `cpus` processors; it was last running at `gear`.
    fn on_job_finish(&mut self, now: Time, cpus: u32, gear: GearId);

    /// A running job switched `cpus` processors from `from` to `to`.
    fn on_gear_change(&mut self, now: Time, cpus: u32, from: GearId, to: GearId);

    /// The next instant strictly after `now` at which this hook's power
    /// state will change *on its own* (e.g. an idle sleep transition), or
    /// `None`. While jobs wait, the engine schedules a scheduling pass at
    /// this instant so starts deferred by a budget are retried when the
    /// autonomous change frees draw — job events alone would never revisit
    /// them on an otherwise quiet machine.
    fn next_power_event(&self, _now: Time) -> Option<Time> {
        None
    }
}

/// A hook that admits everything and records nothing; useful as a default
/// and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl PowerHook for NoopHook {
    fn on_time(&mut self, _now: Time) {}

    fn admit_start(
        &mut self,
        _now: Time,
        _cpus: u32,
        gear: GearId,
        _wq_others: usize,
        _head: bool,
    ) -> Option<GearId> {
        Some(gear)
    }

    fn admit_gear_change(&mut self, _now: Time, _cpus: u32, _from: GearId, _to: GearId) -> bool {
        true
    }

    fn on_job_start(&mut self, _now: Time, _cpus: u32, _gear: GearId) {}

    fn on_job_finish(&mut self, _now: Time, _cpus: u32, _gear: GearId) {}

    fn on_gear_change(&mut self, _now: Time, _cpus: u32, _from: GearId, _to: GearId) {}
}
