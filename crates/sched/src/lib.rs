//! Parallel job scheduling engine.
//!
//! Implements the scheduling substrate of Etinski et al. 2010:
//!
//! * **EASY backfilling** (Mu'alem & Feitelson): jobs start in FCFS order;
//!   the head of the wait queue holds the only reservation, computed from
//!   the *requested* times of running jobs; any other queued job may start
//!   immediately iff doing so cannot delay that reservation. All queued jobs
//!   are rescheduled whenever a job finishes early.
//! * A [`FrequencyPolicy`] hook through which a DVFS gear is chosen per job
//!   at scheduling time — [`FixedGearPolicy`] pins every job to one gear
//!   (the no-DVFS baseline at the top gear); the paper's BSLD-threshold
//!   policy lives in `bsld-core`.
//! * A [`PowerHook`] through which a power manager (see `bsld-powercap`)
//!   observes every start/completion/gear change and may veto or down-gear
//!   decisions that would exceed a cluster power budget.
//! * An optional **dynamic boost** extension (the paper's stated future
//!   work): running reduced jobs are re-timed to the top gear when the wait
//!   queue grows beyond a limit.
//!
//! The engine is event-driven (arrivals and completions), deterministic,
//! and validates its own schedules in debug builds.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod engine;
pub mod hook;
pub mod policy;
pub mod validate;

pub use engine::{
    simulate, simulate_with_hook, BoostConfig, EngineConfig, PassStats, SchedMode, SimError,
    SimResult, Simulation, TraceEvent,
};
pub use hook::{NoopHook, PowerHook};
pub use policy::{DecisionCtx, FixedGearPolicy, FrequencyPolicy};
pub use validate::validate_schedule;
