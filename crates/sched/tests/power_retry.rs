//! Regression tests for the power-retry wake-up path.
//!
//! A [`PowerHook`] that defers starts must be revisited when its power
//! state changes on its own (e.g. an idle sleep transition frees budget):
//! the engine schedules a `PowerRetry` event at the hook-reported instant,
//! deduplicated so one transition produces one wake-up. These tests pin
//! that contract:
//!
//! * a deferred head start on a fully idle machine wakes **exactly once**
//!   per reported transition;
//! * the dedup guard is cleared when the retry event is consumed or
//!   discarded, so it always refers to a live event and a hook re-reporting
//!   the same future instant can never have its wake-up swallowed;
//! * the same machinery works under conservative backfilling with a
//!   veto-then-admit hook.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld_cluster::{Cluster, GearSet};
use bsld_model::{GearId, Job, JobId};
use bsld_power::BetaModel;
use bsld_sched::{
    simulate_with_hook, EngineConfig, FixedGearPolicy, PowerHook, SchedMode, SimResult,
};
use bsld_simkernel::Time;

fn cluster(cpus: u32) -> Cluster {
    Cluster::new("test", cpus, GearSet::paper())
}

fn j(id: u32, arrival: u64, cpus: u32, runtime: u64, requested: u64) -> Job {
    Job::new(id, Time(arrival), cpus, runtime, requested)
}

/// Defers every start before `wake_at` and reports `wake_at` as the next
/// autonomous power event (re-reporting it at every consultation, like a
/// sleep ladder whose pending transition has not fired yet).
struct SleepishHook {
    wake_at: Time,
    vetoes: u32,
    admits: u32,
}

impl SleepishHook {
    fn new(wake_at: u64) -> Self {
        SleepishHook {
            wake_at: Time(wake_at),
            vetoes: 0,
            admits: 0,
        }
    }
}

impl PowerHook for SleepishHook {
    fn on_time(&mut self, _now: Time) {}

    fn admit_start(
        &mut self,
        now: Time,
        _cpus: u32,
        gear: GearId,
        _wq: usize,
        _head: bool,
    ) -> Option<GearId> {
        if now < self.wake_at {
            self.vetoes += 1;
            None
        } else {
            self.admits += 1;
            Some(gear)
        }
    }

    fn admit_gear_change(&mut self, _now: Time, _c: u32, _f: GearId, _t: GearId) -> bool {
        true
    }

    fn on_job_start(&mut self, _now: Time, _cpus: u32, _gear: GearId) {}

    fn on_job_finish(&mut self, _now: Time, _cpus: u32, _gear: GearId) {}

    fn on_gear_change(&mut self, _now: Time, _c: u32, _f: GearId, _t: GearId) {}

    fn next_power_event(&self, now: Time) -> Option<Time> {
        // The engine consults this after every event while jobs wait, so
        // the same instant is re-reported many times; the dedup guard must
        // still produce exactly one retry event for it.
        if now < self.wake_at {
            Some(self.wake_at)
        } else {
            None
        }
    }
}

fn run_hooked(jobs: &[Job], cpus: u32, mode: SchedMode, hook: &mut dyn PowerHook) -> SimResult {
    let tm = BetaModel::new(GearSet::paper());
    let policy = FixedGearPolicy::new(GearSet::paper().top());
    simulate_with_hook(
        &cluster(cpus),
        jobs,
        &policy,
        &tm,
        &EngineConfig {
            mode,
            ..Default::default()
        },
        hook,
    )
    .unwrap()
}

fn start_of(res: &SimResult, id: u32) -> Time {
    res.outcomes
        .iter()
        .find(|o| o.id == JobId(id))
        .unwrap()
        .start
}

#[test]
fn deferred_head_on_idle_machine_wakes_exactly_once() {
    // One job on a fully idle machine, deferred until the transition at
    // t=100. No job event will ever occur before then — only the
    // hook-scheduled retry can wake the scheduler.
    let jobs = vec![j(0, 0, 2, 50, 50)];
    let mut hook = SleepishHook::new(100);
    let res = run_hooked(&jobs, 4, SchedMode::Easy, &mut hook);
    assert_eq!(start_of(&res, 0), Time(100), "starts at the transition");
    assert_eq!(hook.vetoes, 1, "vetoed once at arrival");
    assert_eq!(hook.admits, 1, "admitted once at the wake-up");
    // Exactly three passes: arrival (vetoed), the single retry (start),
    // completion. A duplicated retry event would add a fourth.
    assert_eq!(res.stats.passes, 3, "exactly one wake-up per transition");
}

#[test]
fn re_reported_instant_is_not_swallowed_and_not_duplicated() {
    // Two arrivals before the transition: the hook re-reports t=100 at
    // both. The dedup guard must schedule exactly one retry (no duplicate
    // from the second report) and the run must not stall.
    let jobs = vec![j(0, 0, 2, 50, 50), j(1, 30, 2, 50, 50)];
    let mut hook = SleepishHook::new(100);
    let res = run_hooked(&jobs, 4, SchedMode::Easy, &mut hook);
    assert_eq!(res.outcomes.len(), 2, "no stall");
    assert_eq!(start_of(&res, 0), Time(100));
    assert_eq!(start_of(&res, 1), Time(100), "both fit side by side");
    // Vetoes: arrival 0 consults the head (1); arrival 1 consults the head
    // and the backfill candidate (2 more).
    assert_eq!(hook.vetoes, 3);
    // Passes: arrival 0, arrival 1, one retry, two completions = 5. A
    // swallowed wake-up would stall (caught above); a duplicate retry
    // would add a sixth pass.
    assert_eq!(res.stats.passes, 5, "one retry pass, not two");
}

#[test]
fn retry_discarded_when_queue_drains_before_transition() {
    // The queued job is vetoed and a retry is scheduled at t=100, but a
    // completion at t=40 lets it start earlier... except the hook still
    // vetoes before 100. Instead, drain the queue by making the hook admit
    // from t=40: the retry at 100 then fires on an empty queue and must be
    // discarded without a scheduling pass (and its dedup guard cleared).
    struct AdmitFromHook(SleepishHook);
    impl PowerHook for AdmitFromHook {
        fn on_time(&mut self, now: Time) {
            self.0.on_time(now)
        }
        fn admit_start(
            &mut self,
            now: Time,
            cpus: u32,
            gear: GearId,
            wq: usize,
            head: bool,
        ) -> Option<GearId> {
            self.0.admit_start(now, cpus, gear, wq, head)
        }
        fn admit_gear_change(&mut self, n: Time, c: u32, f: GearId, t: GearId) -> bool {
            self.0.admit_gear_change(n, c, f, t)
        }
        fn on_job_start(&mut self, n: Time, c: u32, g: GearId) {
            self.0.on_job_start(n, c, g)
        }
        fn on_job_finish(&mut self, n: Time, c: u32, g: GearId) {
            self.0.on_job_finish(n, c, g)
        }
        fn on_gear_change(&mut self, n: Time, c: u32, f: GearId, t: GearId) {
            self.0.on_gear_change(n, c, f, t)
        }
        fn next_power_event(&self, now: Time) -> Option<Time> {
            // Keep reporting the transition even though admission opens
            // earlier (a sleep timer that keeps running regardless).
            self.0.next_power_event(now)
        }
    }
    // J0 runs 0→40 (admitted: wake_at=0 for it? no — use wake_at=50).
    // Sequence with wake_at=50: J0 arrives at 0, vetoed, retry@50 queued.
    // J1 arrives at 10, vetoed (retry deduped). At 50 the retry fires,
    // both start, run 50→90/90... choose runtimes so completions land
    // after 100 to let a stale retry fire on an empty queue — but the
    // engine only schedules retries while jobs wait, so instead verify
    // the consumed-retry path cleared the guard: after 50, the hook
    // reports nothing and no further retry pass happens.
    let jobs = vec![j(0, 0, 2, 100, 100), j(1, 10, 2, 100, 100)];
    let mut hook = AdmitFromHook(SleepishHook::new(50));
    let res = run_hooked(&jobs, 4, SchedMode::Easy, &mut hook);
    assert_eq!(res.outcomes.len(), 2);
    assert_eq!(start_of(&res, 0), Time(50));
    assert_eq!(start_of(&res, 1), Time(50));
    // arrival, arrival, retry, completion, completion.
    assert_eq!(res.stats.passes, 5);
}

#[test]
fn conservative_veto_then_admit_retries_via_power_event() {
    // Conservative mode: every queued job holds a reservation; a vetoed
    // start-now must be retried at the hook's transition, exactly once.
    let jobs = vec![j(0, 0, 4, 60, 60), j(1, 5, 2, 30, 30)];
    let mut hook = SleepishHook::new(80);
    let res = run_hooked(&jobs, 4, SchedMode::Conservative, &mut hook);
    assert_eq!(res.outcomes.len(), 2, "no stall under conservative mode");
    assert_eq!(start_of(&res, 0), Time(80));
    assert_eq!(
        start_of(&res, 1),
        Time(140),
        "J1 keeps its reservation behind J0"
    );
    // J0 vetoed at its arrival pass and J1's arrival pass; J1 is not a
    // start-now candidate while J0's reservation blocks the machine.
    assert!(hook.vetoes >= 2);
    // Exactly one retry pass: arrival, arrival, retry, completion (J0,
    // which admits J1's start at 140? no — J1 starts at J0's completion
    // pass), completion.
    assert_eq!(res.stats.passes, 5, "one retry wake-up, no duplicates");
}

#[test]
fn dedup_survives_many_waiting_events() {
    // A stream of arrivals while deferred: every event re-reports the same
    // transition; exactly one retry event may exist. With n arrivals the
    // pass count is n (arrivals) + 1 (retry) + n (completions).
    let n = 6u32;
    let jobs: Vec<Job> = (0..n).map(|i| j(i, i as u64, 1, 10, 10)).collect();
    let mut hook = SleepishHook::new(1000);
    let res = run_hooked(&jobs, 8, SchedMode::Easy, &mut hook);
    assert_eq!(res.outcomes.len(), n as usize);
    for o in &res.outcomes {
        assert_eq!(o.start, Time(1000));
    }
    assert_eq!(res.stats.passes as u32, 2 * n + 1);
    // Each arrival pass consults the head and every backfill candidate:
    // pass k sees k queued jobs, so 1 + 2 + ... + n vetoes in total.
    assert_eq!(hook.vetoes, n * (n + 1) / 2);
}
