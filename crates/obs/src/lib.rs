//! # bsld-obs — observability primitives for the BSLD reproduction
//!
//! Two strictly separated planes:
//!
//! * **The deterministic trace plane** ([`trace`]) — structured events
//!   stamped with *simulated* time only, emitted by the scheduler, the
//!   power-cap hook and the campaign driver through the [`TraceSink`]
//!   trait, and rendered to Chrome-trace-format JSON (loadable in
//!   Perfetto / `chrome://tracing`). Every byte of a trace file is a pure
//!   function of the simulated run: replays are byte-identical. This
//!   module reads no clock and carries **zero** `audit:allow` escapes.
//!
//! * **The wall-clock profiling plane** ([`profile`]) — counters,
//!   histograms, gauges and phase stopwatches for *provenance*: per-phase
//!   campaign columns, serve-daemon latency, cache statistics. Everything
//!   here is wall-clock by definition, never feeds simulation results or
//!   cell identity, and carries the crate's only justified
//!   `audit:allow(D2)` escapes.
//!
//! The disabled path is free: an engine configured with no sink
//! (`Option::None`) performs one branch per would-be event and allocates
//! nothing.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod profile;
pub mod trace;

pub use profile::{Counter, Gauge, Histogram, HistogramSummary, PhaseSecs, Phases, Stopwatch};
pub use trace::{
    render_chrome_trace, write_chrome_trace, BufferSink, NullSink, TraceEvent, TraceSink, VetoSite,
};
