//! The deterministic trace plane.
//!
//! Events are stamped with **simulated** microseconds and nothing else —
//! this module must stay free of wall-clock, entropy and environment
//! reads (it is on `bsld-audit`'s determinism-critical list with zero
//! escapes). A trace file is therefore a pure function of the simulated
//! run: re-running the same scenario produces byte-identical output.
//!
//! ## Wire format
//!
//! [`render_chrome_trace`] produces the Chrome trace-event JSON array
//! format (one event object per line, so the file diffs line-by-line),
//! loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`:
//!
//! * each traced scenario cell becomes one *process* (`pid` = cell index
//!   in expansion order, named via a `"M"` metadata event);
//! * each job becomes a `B`/`E` slice on the track of its first allocated
//!   processor (`tid` = first processor + 1);
//! * scheduler passes, arrivals, cap vetoes, power retries, sleep
//!   transitions and boosts are instants on the scheduler track
//!   (`tid` = 0).

use std::sync::{Arc, Mutex, PoisonError};

/// Where a power-cap veto struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VetoSite {
    /// The EASY head job was deferred by the cap (it will reserve).
    Head,
    /// A backfill candidate was declined at every allowed gear.
    Backfill,
    /// A conservative-mode admission was deferred.
    Conservative,
}

impl VetoSite {
    /// Stable lowercase label used in the trace `args`.
    pub fn label(self) -> &'static str {
        match self {
            VetoSite::Head => "head",
            VetoSite::Backfill => "backfill",
            VetoSite::Conservative => "conservative",
        }
    }
}

/// One structured simulation event. All timestamps `t` are **simulated
/// microseconds** ([`crate::trace`] never sees a wall clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A job entered the wait queue.
    JobArrive {
        /// Simulated microseconds.
        t: u64,
        /// Job id.
        job: u64,
    },
    /// A job was allocated and started.
    JobStart {
        /// Simulated microseconds.
        t: u64,
        /// Job id.
        job: u64,
        /// Gear it runs at.
        gear: u64,
        /// Processors allocated.
        cpus: u64,
        /// First allocated processor (its trace track).
        first_proc: u64,
        /// `true` when it backfilled ahead of the queue head.
        backfilled: bool,
    },
    /// A job finished and released its processors.
    JobFinish {
        /// Simulated microseconds.
        t: u64,
        /// Job id.
        job: u64,
        /// First allocated processor (its trace track).
        first_proc: u64,
    },
    /// A scheduler pass ran (`elided = false`) or was provably skipped by
    /// pass elision (`elided = true`) — the elision outcome is part of the
    /// trace contract.
    Pass {
        /// Simulated microseconds.
        t: u64,
        /// Cumulative pass counter (skipped passes count too).
        pass: u64,
        /// Jobs started by this pass (0 for skipped passes).
        started: u64,
        /// The pass rebuilt the availability profile.
        rebuilt: bool,
        /// The pass was skipped by the elision proof.
        elided: bool,
    },
    /// The power-cap hook vetoed (deferred) a start.
    CapVeto {
        /// Simulated microseconds.
        t: u64,
        /// The deferred job.
        job: u64,
        /// Which admission site vetoed.
        site: VetoSite,
    },
    /// A deferred-start retry pass was scheduled by the power hook.
    PowerRetry {
        /// Simulated microseconds.
        t: u64,
    },
    /// Idle processors crossed a sleep-state transition (aggregate
    /// snapshot after the ladder advanced).
    SleepTransition {
        /// Simulated microseconds.
        t: u64,
        /// Cumulative sleep transitions so far.
        sleeps: u64,
        /// Cumulative wake transitions so far.
        wakes: u64,
        /// Processors currently in a sleep state.
        sleeping: u64,
    },
    /// A waiting job was boosted to a higher gear.
    Boost {
        /// Simulated microseconds.
        t: u64,
        /// The boosted job.
        job: u64,
        /// The gear it was raised to.
        gear: u64,
    },
    /// A boost was vetoed by the power hook.
    BoostVeto {
        /// Simulated microseconds.
        t: u64,
        /// The job whose boost was declined.
        job: u64,
    },
}

impl TraceEvent {
    /// The simulated-microsecond timestamp of this event.
    pub fn t(&self) -> u64 {
        match self {
            TraceEvent::JobArrive { t, .. }
            | TraceEvent::JobStart { t, .. }
            | TraceEvent::JobFinish { t, .. }
            | TraceEvent::Pass { t, .. }
            | TraceEvent::CapVeto { t, .. }
            | TraceEvent::PowerRetry { t }
            | TraceEvent::SleepTransition { t, .. }
            | TraceEvent::Boost { t, .. }
            | TraceEvent::BoostVeto { t, .. } => *t,
        }
    }
}

/// The emission seam: the scheduler and power hook record events through
/// this trait, behind `Option<Arc<dyn TraceSink>>` — `None` is the
/// no-allocation disabled path. `&self` methods so one sink can be shared
/// across the engine and its hooks.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Records one event.
    fn record(&self, ev: TraceEvent);
}

/// A sink that discards everything — for A/B-testing sink overhead
/// against the `None` fast path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: TraceEvent) {}
}

/// Collects events in memory, in emission order. One buffer per scenario
/// cell keeps parallel sweeps deterministic: each cell's engine runs
/// single-threaded, so its buffer order is a pure function of the run,
/// and the driver concatenates buffers in expansion order afterwards.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl BufferSink {
    /// A fresh shared buffer.
    pub fn shared() -> Arc<BufferSink> {
        Arc::new(BufferSink::default())
    }

    /// Drains the collected events (emission order).
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Events collected so far.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for BufferSink {
    fn record(&self, ev: TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(ev);
    }
}

/// Escapes a string for a JSON string literal body.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one event as a single-line Chrome trace object.
fn render_event(pid: usize, ev: &TraceEvent) -> String {
    let b = |v: bool| if v { "true" } else { "false" };
    match ev {
        TraceEvent::JobArrive { t, job } => format!(
            r#"{{"name":"arrive","ph":"i","ts":{t},"pid":{pid},"tid":0,"s":"t","args":{{"job":{job}}}}}"#
        ),
        TraceEvent::JobStart {
            t,
            job,
            gear,
            cpus,
            first_proc,
            backfilled,
        } => format!(
            r#"{{"name":"job {job}","ph":"B","ts":{t},"pid":{pid},"tid":{tid},"args":{{"job":{job},"gear":{gear},"cpus":{cpus},"backfilled":{bf}}}}}"#,
            tid = first_proc + 1,
            bf = b(*backfilled),
        ),
        TraceEvent::JobFinish { t, job, first_proc } => format!(
            r#"{{"name":"job {job}","ph":"E","ts":{t},"pid":{pid},"tid":{tid},"args":{{"job":{job}}}}}"#,
            tid = first_proc + 1,
        ),
        TraceEvent::Pass {
            t,
            pass,
            started,
            rebuilt,
            elided,
        } => format!(
            r#"{{"name":"pass","ph":"i","ts":{t},"pid":{pid},"tid":0,"s":"t","args":{{"pass":{pass},"started":{started},"rebuilt":{rb},"elided":{el}}}}}"#,
            rb = b(*rebuilt),
            el = b(*elided),
        ),
        TraceEvent::CapVeto { t, job, site } => format!(
            r#"{{"name":"cap veto","ph":"i","ts":{t},"pid":{pid},"tid":0,"s":"t","args":{{"job":{job},"site":"{site}"}}}}"#,
            site = site.label(),
        ),
        TraceEvent::PowerRetry { t } => format!(
            r#"{{"name":"power retry","ph":"i","ts":{t},"pid":{pid},"tid":0,"s":"t","args":{{}}}}"#
        ),
        TraceEvent::SleepTransition {
            t,
            sleeps,
            wakes,
            sleeping,
        } => format!(
            r#"{{"name":"sleep","ph":"i","ts":{t},"pid":{pid},"tid":0,"s":"t","args":{{"sleeps":{sleeps},"wakes":{wakes},"sleeping":{sleeping}}}}}"#
        ),
        TraceEvent::Boost { t, job, gear } => format!(
            r#"{{"name":"boost","ph":"i","ts":{t},"pid":{pid},"tid":0,"s":"t","args":{{"job":{job},"gear":{gear}}}}}"#
        ),
        TraceEvent::BoostVeto { t, job } => format!(
            r#"{{"name":"boost veto","ph":"i","ts":{t},"pid":{pid},"tid":0,"s":"t","args":{{"job":{job}}}}}"#
        ),
    }
}

/// Renders a full Chrome-trace file: one process per `(name, events)`
/// cell, in slice order (`pid` = index). The output is a valid JSON array
/// with exactly one event object per line — byte-identical for identical
/// event lists, diffable line-by-line.
pub fn render_chrome_trace(cells: &[(String, Vec<TraceEvent>)]) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (pid, (name, events)) in cells.iter().enumerate() {
        lines.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            esc(name)
        ));
        lines.extend(events.iter().map(|ev| render_event(pid, ev)));
    }
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// Writes [`render_chrome_trace`] to `path`.
pub fn write_chrome_trace(
    path: &std::path::Path,
    cells: &[(String, Vec<TraceEvent>)],
) -> std::io::Result<()> {
    std::fs::write(path, render_chrome_trace(cells))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::JobArrive { t: 0, job: 1 },
            TraceEvent::Pass {
                t: 0,
                pass: 1,
                started: 1,
                rebuilt: true,
                elided: false,
            },
            TraceEvent::JobStart {
                t: 0,
                job: 1,
                gear: 0,
                cpus: 4,
                first_proc: 0,
                backfilled: false,
            },
            TraceEvent::CapVeto {
                t: 1_000_000,
                job: 2,
                site: VetoSite::Backfill,
            },
            TraceEvent::JobFinish {
                t: 2_000_000,
                job: 1,
                first_proc: 0,
            },
        ]
    }

    #[test]
    fn buffer_sink_preserves_emission_order() {
        let sink = BufferSink::shared();
        for ev in sample() {
            sink.record(ev);
        }
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.take(), sample());
        assert!(sink.is_empty(), "take drains");
    }

    #[test]
    fn rendering_is_deterministic_and_one_event_per_line() {
        let cells = vec![("cell-a".to_string(), sample())];
        let a = render_chrome_trace(&cells);
        let b = render_chrome_trace(&cells);
        assert_eq!(a, b);
        // array brackets + 1 metadata + 5 events
        assert_eq!(a.lines().count(), 2 + 1 + 5);
        assert!(a.starts_with("[\n") && a.ends_with("\n]\n"));
    }

    #[test]
    fn job_slices_balance_and_escape_is_sound() {
        let cells = vec![("a \"quoted\"\nname".to_string(), sample())];
        let text = render_chrome_trace(&cells);
        assert_eq!(
            text.matches(r#""ph":"B""#).count(),
            text.matches(r#""ph":"E""#).count(),
            "every begin slice has an end"
        );
        assert!(text.contains(r#"a \"quoted\"\nname"#));
        assert!(!text.contains('\u{0}'));
    }

    #[test]
    fn null_sink_discards() {
        let s = NullSink;
        s.record(TraceEvent::PowerRetry { t: 7 });
        // Nothing observable: NullSink is stateless by construction.
    }

    #[test]
    fn timestamps_are_accessible() {
        assert_eq!(TraceEvent::PowerRetry { t: 42 }.t(), 42);
        for ev in sample() {
            let _ = ev.t();
        }
    }
}
