//! The wall-clock profiling plane.
//!
//! Everything in this module observes the *host*, not the simulation:
//! phase durations, request latencies, cache traffic. Its values are
//! provenance — they are excluded from result equality, never feed cell
//! identity or aggregates, and are exactly the fields the determinism
//! tests strip before byte-diffing artifacts. The wall-clock reads are
//! concentrated here behind [`Stopwatch`], each carrying the crate's only
//! `audit:allow(D2)` escapes; the trace plane ([`crate::trace`]) must
//! never call into this module.
//!
//! There is no global registry: each subsystem owns a plain struct of
//! these primitives (e.g. the serve daemon's per-op histograms), so
//! metric sets are typed, discoverable and allocation-free on the hot
//! path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// A monotonically increasing event counter (relaxed atomics: totals,
/// not synchronization).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level gauge that remembers its high-water mark (e.g. in-flight
/// requests / queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Raises the level by one, updating the peak; returns the new level.
    pub fn inc(&self) -> u64 {
        let v = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(v, Ordering::Relaxed);
        v
    }

    /// Lowers the level by one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two latency buckets (covers the full `u64` range).
const BUCKETS: usize = 65;

/// A lock-free power-of-two histogram: value `v` lands in bucket
/// `bit_length(v)`, so bucket `i > 0` covers `[2^(i-1), 2^i)`. Reported
/// percentiles are bucket upper bounds — exact enough for latency
/// triage, constant memory, no locks on the record path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot for reporting (concurrent recorders
    /// may skew percentiles by in-flight samples; totals stay exact).
    pub fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let pct = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Smallest bucket whose cumulative count covers quantile q.
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Upper bound of bucket i: 2^i - 1 (bucket 0 is {0}).
                    return (1u64 << i.min(63)).saturating_sub(u64::from(i > 0));
                }
            }
            self.max.load(Ordering::Relaxed)
        };
        HistogramSummary {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }
}

/// A point-in-time histogram report.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Median, as the covering bucket's upper bound.
    pub p50: u64,
    /// 90th percentile, as the covering bucket's upper bound.
    pub p90: u64,
    /// 99th percentile, as the covering bucket's upper bound.
    pub p99: u64,
}

/// A wall-clock stopwatch — the profiling plane's one clock seam. Holding
/// clock reads here keeps the rest of the workspace free of `Instant::now`
/// (the audit's D2 rule), so a new wall-clock read is always a deliberate,
/// reviewed decision in this file.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        // audit:allow(D2): the profiling plane is wall-clock by definition; its readings are provenance only and never feed simulation results, aggregates or cell identity
        Stopwatch { t0: Instant::now() }
    }

    /// Seconds since start (or the last [`Stopwatch::lap_s`]).
    pub fn elapsed_s(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Whole microseconds since start, for latency histograms.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Returns the seconds since the last lap (or start) and restarts the
    /// watch — the phase-timer primitive: one watch, one lap per phase.
    pub fn lap_s(&mut self) -> f64 {
        // audit:allow(D2): profiling-plane phase boundary; see Stopwatch::start
        let now = Instant::now();
        let s = now.duration_since(self.t0).as_secs_f64();
        self.t0 = now;
        s
    }
}

/// The per-run phase breakdown persisted as campaign-manifest provenance
/// columns (`parse_s`, `build_s`, `sim_s`). Wall-clock: excluded from row
/// equality exactly like `elapsed_s`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseSecs {
    /// Workload materialisation: SWF parse + clean, or synthetic build.
    pub parse_s: f64,
    /// Simulator construction: cluster, rails, engine configuration.
    pub build_s: f64,
    /// The simulation event loop plus metric aggregation.
    pub sim_s: f64,
}

/// A named phase accumulator for coarser harnesses (experiment drivers,
/// ad-hoc profiling): phases registered by name, durations accumulated
/// across repeats.
#[derive(Debug, Default)]
pub struct Phases {
    entries: Mutex<Vec<(&'static str, f64)>>,
}

impl Phases {
    /// Times `f` and accrues its duration under `name`.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        self.add(name, sw.elapsed_s());
        out
    }

    /// Accrues `secs` under `name` (registering it on first use).
    pub fn add(&self, name: &'static str, secs: f64) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        match entries.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += secs,
            None => entries.push((name, secs)),
        }
    }

    /// Total seconds accrued under `name`.
    pub fn seconds(&self, name: &str) -> Option<f64> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
    }

    /// All phases in first-use order.
    pub fn snapshot(&self) -> Vec<(&'static str, f64)> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let g = Gauge::new();
        assert_eq!(g.inc(), 1);
        assert_eq!(g.inc(), 2);
        g.dec();
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 2);
        g.dec();
        g.dec(); // saturates, no underflow
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1107);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 >= 1000, "p99 covers the top bucket, got {}", s.p99);
        assert!(s.p50 <= 3, "median bucket upper bound, got {}", s.p50);
    }

    #[test]
    fn histogram_empty_summary_is_zero() {
        let s = Histogram::new().summary();
        assert_eq!((s.count, s.sum, s.max, s.p50, s.p99), (0, 0, 0, 0, 0));
    }

    #[test]
    fn stopwatch_laps_accumulate_phases() {
        let mut sw = Stopwatch::start();
        let a = sw.lap_s();
        let b = sw.lap_s();
        assert!(a >= 0.0 && b >= 0.0);
        assert!(sw.elapsed_s() >= 0.0);
        let _us = sw.elapsed_us();
    }

    #[test]
    fn phases_accumulate_by_name() {
        let p = Phases::default();
        p.add("parse", 1.0);
        p.add("parse", 0.5);
        p.add("sim", 2.0);
        assert_eq!(p.seconds("parse"), Some(1.5));
        assert_eq!(p.seconds("sim"), Some(2.0));
        assert_eq!(p.seconds("absent"), None);
        let snap = p.snapshot();
        assert_eq!(snap[0].0, "parse");
        let out = p.time("timed", || 7);
        assert_eq!(out, 7);
        assert!(p.seconds("timed").is_some());
    }
}
