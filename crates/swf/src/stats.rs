//! Trace summary statistics.

use std::sync::atomic::{AtomicBool, Ordering};

use bsld_simkernel::stats::OnlineStats;

use crate::convert::TraceAborted;
use crate::record::SwfTrace;

/// How many records are processed between two abort-flag polls in
/// [`TraceStats::of_with_abort`] (same granularity rationale as the
/// parser's line poll and the cleaner's record poll).
const ABORT_POLL_RECORDS: usize = 4096;

/// Aggregate statistics of a trace, for workload characterisation tables.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Number of records summarised.
    pub jobs: usize,
    /// Runtime statistics, seconds.
    pub runtime: OnlineStats,
    /// Processor-count statistics.
    pub size: OnlineStats,
    /// Requested-time statistics, seconds.
    pub requested: OnlineStats,
    /// Fraction of jobs using a single processor.
    pub serial_fraction: f64,
    /// Fraction of jobs shorter than 600 s (the BSLD threshold).
    pub short_fraction: f64,
    /// Trace span: first to last submission, seconds.
    pub span_secs: u64,
    /// Offered load: total processor-seconds over machine capacity for the
    /// span (requires the header's `MaxProcs`; 0 otherwise).
    pub offered_load: f64,
}

impl TraceStats {
    /// Computes statistics over a trace's records.
    pub fn of(trace: &SwfTrace) -> TraceStats {
        // The error arm is unreachable: without an abort flag the poll can
        // never trip. Falling back to empty-trace statistics keeps this
        // signature infallible without introducing a panic path.
        Self::of_with_abort(trace, None).unwrap_or_else(|_| Self::of(&SwfTrace::default()))
    }

    /// As [`TraceStats::of`], polling `abort` every few thousand records: a
    /// raised flag stops the walk promptly instead of summarising the rest
    /// of a multi-million-record trace.
    pub fn of_with_abort(
        trace: &SwfTrace,
        abort: Option<&AtomicBool>,
    ) -> Result<TraceStats, TraceAborted> {
        let raised = |i: usize| {
            i.is_multiple_of(ABORT_POLL_RECORDS)
                && abort.is_some_and(|flag| flag.load(Ordering::SeqCst))
        };
        let mut runtime = OnlineStats::new();
        let mut size = OnlineStats::new();
        let mut requested = OnlineStats::new();
        let mut serial = 0usize;
        let mut short = 0usize;
        let mut first = i64::MAX;
        let mut last = i64::MIN;
        let mut area = 0f64;
        let mut n = 0usize;
        for (i, r) in trace.records.iter().enumerate() {
            if raised(i) {
                return Err(TraceAborted);
            }
            let (Some(p), Some(req)) = (r.effective_procs(), r.effective_req_time()) else {
                continue;
            };
            if r.run_time <= 0 {
                continue;
            }
            n += 1;
            runtime.push(r.run_time as f64);
            size.push(p as f64);
            requested.push(req as f64);
            if p == 1 {
                serial += 1;
            }
            if r.run_time < 600 {
                short += 1;
            }
            first = first.min(r.submit);
            last = last.max(r.submit);
            area += p as f64 * r.run_time as f64;
        }
        let span_secs = if n > 0 {
            (last - first).max(0) as u64
        } else {
            0
        };
        let offered_load = match (trace.header.max_procs, span_secs) {
            (Some(m), s) if s > 0 => area / (m as f64 * s as f64),
            _ => 0.0,
        };
        Ok(TraceStats {
            jobs: n,
            runtime,
            size,
            requested,
            serial_fraction: if n > 0 { serial as f64 / n as f64 } else { 0.0 },
            short_fraction: if n > 0 { short as f64 / n as f64 } else { 0.0 },
            span_secs,
            offered_load,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SwfHeader, SwfRecord};

    #[test]
    fn stats_of_simple_trace() {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(10),
                ..Default::default()
            },
            records: vec![
                SwfRecord::simple(1, 0, 100, 1, 100), // serial, short
                SwfRecord::simple(2, 500, 1000, 4, 2000),
                SwfRecord::simple(3, 1000, 2000, 5, 2000),
            ],
        };
        let s = TraceStats::of(&trace);
        assert_eq!(s.jobs, 3);
        assert!((s.serial_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.short_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.span_secs, 1000);
        // area = 100 + 4000 + 10000 = 14100; capacity = 10 * 1000.
        assert!((s.offered_load - 1.41).abs() < 1e-12);
        assert!((s.runtime.mean() - (100.0 + 1000.0 + 2000.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::of(&SwfTrace::default());
        assert_eq!(s.jobs, 0);
        assert_eq!(s.span_secs, 0);
        assert_eq!(s.offered_load, 0.0);
        assert_eq!(s.serial_fraction, 0.0);
    }

    #[test]
    fn skips_invalid_records() {
        let trace = SwfTrace {
            header: SwfHeader::default(),
            records: vec![SwfRecord::unknown(), SwfRecord::simple(1, 0, 50, 2, 50)],
        };
        let s = TraceStats::of(&trace);
        assert_eq!(s.jobs, 1);
    }

    #[test]
    fn raised_abort_flag_stops_the_walk() {
        let trace = SwfTrace {
            header: SwfHeader::default(),
            records: vec![SwfRecord::simple(1, 0, 50, 2, 50)],
        };
        let flag = AtomicBool::new(true);
        let err = TraceStats::of_with_abort(&trace, Some(&flag)).unwrap_err();
        assert_eq!(err, TraceAborted);
    }

    #[test]
    fn unraised_abort_flag_changes_nothing() {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(10),
                ..Default::default()
            },
            records: vec![
                SwfRecord::simple(1, 0, 100, 1, 100),
                SwfRecord::simple(2, 500, 1000, 4, 2000),
            ],
        };
        let flag = AtomicBool::new(false);
        let with = TraceStats::of_with_abort(&trace, Some(&flag)).unwrap();
        let without = TraceStats::of(&trace);
        assert_eq!(with.jobs, without.jobs);
        assert_eq!(with.span_secs, without.span_secs);
        assert_eq!(with.offered_load, without.offered_load);
    }
}
