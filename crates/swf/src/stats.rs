//! Trace summary statistics.

use bsld_simkernel::stats::OnlineStats;

use crate::record::SwfTrace;

/// Aggregate statistics of a trace, for workload characterisation tables.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Number of records summarised.
    pub jobs: usize,
    /// Runtime statistics, seconds.
    pub runtime: OnlineStats,
    /// Processor-count statistics.
    pub size: OnlineStats,
    /// Requested-time statistics, seconds.
    pub requested: OnlineStats,
    /// Fraction of jobs using a single processor.
    pub serial_fraction: f64,
    /// Fraction of jobs shorter than 600 s (the BSLD threshold).
    pub short_fraction: f64,
    /// Trace span: first to last submission, seconds.
    pub span_secs: u64,
    /// Offered load: total processor-seconds over machine capacity for the
    /// span (requires the header's `MaxProcs`; 0 otherwise).
    pub offered_load: f64,
}

impl TraceStats {
    /// Computes statistics over a trace's records.
    pub fn of(trace: &SwfTrace) -> TraceStats {
        let mut runtime = OnlineStats::new();
        let mut size = OnlineStats::new();
        let mut requested = OnlineStats::new();
        let mut serial = 0usize;
        let mut short = 0usize;
        let mut first = i64::MAX;
        let mut last = i64::MIN;
        let mut area = 0f64;
        let mut n = 0usize;
        for r in &trace.records {
            let (Some(p), Some(req)) = (r.effective_procs(), r.effective_req_time()) else {
                continue;
            };
            if r.run_time <= 0 {
                continue;
            }
            n += 1;
            runtime.push(r.run_time as f64);
            size.push(p as f64);
            requested.push(req as f64);
            if p == 1 {
                serial += 1;
            }
            if r.run_time < 600 {
                short += 1;
            }
            first = first.min(r.submit);
            last = last.max(r.submit);
            area += p as f64 * r.run_time as f64;
        }
        let span_secs = if n > 0 {
            (last - first).max(0) as u64
        } else {
            0
        };
        let offered_load = match (trace.header.max_procs, span_secs) {
            (Some(m), s) if s > 0 => area / (m as f64 * s as f64),
            _ => 0.0,
        };
        TraceStats {
            jobs: n,
            runtime,
            size,
            requested,
            serial_fraction: if n > 0 { serial as f64 / n as f64 } else { 0.0 },
            short_fraction: if n > 0 { short as f64 / n as f64 } else { 0.0 },
            span_secs,
            offered_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SwfHeader, SwfRecord};

    #[test]
    fn stats_of_simple_trace() {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(10),
                ..Default::default()
            },
            records: vec![
                SwfRecord::simple(1, 0, 100, 1, 100), // serial, short
                SwfRecord::simple(2, 500, 1000, 4, 2000),
                SwfRecord::simple(3, 1000, 2000, 5, 2000),
            ],
        };
        let s = TraceStats::of(&trace);
        assert_eq!(s.jobs, 3);
        assert!((s.serial_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.short_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.span_secs, 1000);
        // area = 100 + 4000 + 10000 = 14100; capacity = 10 * 1000.
        assert!((s.offered_load - 1.41).abs() < 1e-12);
        assert!((s.runtime.mean() - (100.0 + 1000.0 + 2000.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::of(&SwfTrace::default());
        assert_eq!(s.jobs, 0);
        assert_eq!(s.span_secs, 0);
        assert_eq!(s.offered_load, 0.0);
        assert_eq!(s.serial_fraction, 0.0);
    }

    #[test]
    fn skips_invalid_records() {
        let trace = SwfTrace {
            header: SwfHeader::default(),
            records: vec![SwfRecord::unknown(), SwfRecord::simple(1, 0, 50, 2, 50)],
        };
        let s = TraceStats::of(&trace);
        assert_eq!(s.jobs, 1);
    }
}
