//! Standard Workload Format (SWF) support.
//!
//! The paper simulates 5 000-job segments of *cleaned* traces from the
//! Parallel Workload Archive. This crate implements the archive's SWF text
//! format so real traces can be dropped into the reproduction unchanged:
//!
//! * [`SwfRecord`] — the 18 standard fields of one job line;
//! * [`parse_swf`] / [`write_swf`] — text round-trip with header directives;
//! * [`stream`] — [`SwfStream`], the record-at-a-time parser the in-memory
//!   API is a collect shim over, plus [`clean_swf_stream`] for
//!   parse-and-clean with peak memory bounded by surviving jobs;
//! * [`clean`] — the cleaning steps the paper relies on: removal of
//!   non-representative user *flurries*, dropping failed/zero-size jobs,
//!   clamping runtimes to estimates, and 5 000-job segment selection with
//!   arrival rebasing;
//! * [`stats`] — trace summaries (size/runtime distributions, offered load);
//! * [`convert`] — conversion into `bsld-model` [`bsld_model::Job`]s;
//! * [`write`](mod@write) — SWF serialisation and [`generate_swf`], the deterministic
//!   synthetic trace generator behind `bsld-repro gen-swf`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod clean;
pub mod convert;
pub mod parse;
pub mod record;
pub mod stats;
pub mod stream;
pub mod write;

pub use clean::{
    clean_trace, clean_trace_with_abort, select_segment, CleanAborted, CleanConfig, CleanSummary,
};
pub use convert::{records_to_jobs, records_to_jobs_with_abort, TraceAborted};
pub use parse::{parse_swf, parse_swf_with_abort, ParseError, ParseErrorKind};
pub use record::{SwfHeader, SwfRecord, SwfTrace};
pub use stats::TraceStats;
pub use stream::{clean_swf_stream, parse_swf_stream, SwfStream, SwfStreamError};
pub use write::{generate_swf, write_swf, write_swf_to, GEN_SWF_DEFAULT_PROCS};
