//! Streaming SWF parsing and cleaning.
//!
//! [`parse_swf`](crate::parse_swf) materialises a whole trace before any
//! downstream stage runs — fine for 5 000-job segments, hopeless for the
//! multi-month, million-line archive logs the paper's workloads are cut
//! from. [`SwfStream`] instead yields one [`SwfRecord`] at a time straight
//! off a [`BufRead`], with the parser's every-4096-lines abort poll folded
//! in, and [`clean_swf_stream`] applies the validity filters
//! record-by-record so peak memory is bounded by the number of *surviving*
//! jobs, never the file size.
//!
//! The in-memory API ([`crate::parse_swf_with_abort`]) is a thin collect
//! shim over this iterator, so the two paths cannot drift; on top of that,
//! `tests/streaming_ab.rs` and the CI byte-diff hold the streamed and
//! materialised replay paths bit-identical end to end.

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::clean::{flurry_pass, CleanAborted, CleanConfig, CleanSummary};
use crate::parse::ABORT_POLL_LINES;
use crate::parse::{parse_data_line, parse_header_line, ParseError, ParseErrorKind};
use crate::record::{SwfHeader, SwfRecord, SwfTrace};

/// An iterator over the data records of an SWF byte stream.
///
/// Yields `Result<SwfRecord, ParseError>` items; comment lines accumulate
/// into the header as they are encountered (use [`SwfStream::header`] or
/// [`SwfStream::into_header`] — the header is only complete once the
/// iterator is exhausted, since SWF tolerates directives anywhere in the
/// file). After the first error the stream is fused: further calls yield
/// `None`.
///
/// Line numbers in errors are 1-based and count *all* physical lines
/// (comments and blanks included), exactly like the in-memory parser.
#[derive(Debug)]
pub struct SwfStream<'a, R> {
    reader: R,
    header: SwfHeader,
    abort: Option<&'a AtomicBool>,
    /// Physical lines consumed so far (0-based index of the next line).
    line: usize,
    buf: String,
    done: bool,
}

impl<'a, R: BufRead> SwfStream<'a, R> {
    /// Streams records from `reader` with no abort flag.
    pub fn new(reader: R) -> SwfStream<'static, R> {
        SwfStream::with_abort(reader, None)
    }

    /// Streams records from `reader`, polling `abort` every
    /// [`ABORT_POLL_LINES`](crate::parse) physical lines; a raised flag
    /// stops the stream with [`ParseErrorKind::Aborted`].
    pub fn with_abort(reader: R, abort: Option<&'a AtomicBool>) -> SwfStream<'a, R> {
        SwfStream {
            reader,
            header: SwfHeader::default(),
            abort,
            line: 0,
            buf: String::new(),
            done: false,
        }
    }

    /// The header directives seen *so far*. Complete only once the stream
    /// is exhausted.
    pub fn header(&self) -> &SwfHeader {
        &self.header
    }

    /// Consumes the stream, returning the accumulated header.
    pub fn into_header(self) -> SwfHeader {
        self.header
    }

    /// The abort flag this stream polls, for downstream stages that want
    /// to share it (e.g. [`clean_swf_stream`]).
    pub fn abort_flag(&self) -> Option<&'a AtomicBool> {
        self.abort
    }

    /// Drains the stream into an in-memory [`SwfTrace`] — the collect shim
    /// the legacy [`crate::parse_swf`] API is built on.
    pub fn collect_trace(mut self) -> Result<SwfTrace, ParseError> {
        let mut records = Vec::new();
        for rec in &mut self {
            records.push(rec?);
        }
        Ok(SwfTrace {
            header: self.header,
            records,
        })
    }
}

impl<R: BufRead> Iterator for SwfStream<'_, R> {
    type Item = Result<SwfRecord, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let lineno = self.line + 1;
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(ParseError {
                        line: lineno,
                        kind: ParseErrorKind::Io {
                            message: e.to_string(),
                        },
                    }));
                }
            }
            // Poll with the 0-based index of the line just read, matching
            // the in-memory parser's cadence (and its line-1 abort report).
            if self.line.is_multiple_of(ABORT_POLL_LINES) {
                if let Some(flag) = self.abort {
                    if flag.load(Ordering::SeqCst) {
                        self.done = true;
                        return Some(Err(ParseError {
                            line: lineno,
                            kind: ParseErrorKind::Aborted,
                        }));
                    }
                }
            }
            self.line += 1;
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix(';') {
                parse_header_line(comment.trim(), &mut self.header);
                continue;
            }
            match parse_data_line(line, lineno) {
                Ok(r) => return Some(Ok(r)),
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Streams records from `reader` (convenience constructor mirroring
/// [`crate::parse_swf`]).
pub fn parse_swf_stream<R: BufRead>(reader: R) -> SwfStream<'static, R> {
    SwfStream::<R>::new(reader)
}

/// Why a streamed parse-and-clean stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfStreamError {
    /// The underlying byte stream failed to parse (or its abort poll
    /// tripped — [`ParseErrorKind::Aborted`]).
    Parse(ParseError),
    /// The abort flag was raised during the cleaning passes.
    Clean(CleanAborted),
}

impl std::fmt::Display for SwfStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfStreamError::Parse(e) => write!(f, "{e}"),
            SwfStreamError::Clean(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SwfStreamError {}

impl From<ParseError> for SwfStreamError {
    fn from(e: ParseError) -> Self {
        SwfStreamError::Parse(e)
    }
}

impl From<CleanAborted> for SwfStreamError {
    fn from(e: CleanAborted) -> Self {
        SwfStreamError::Clean(e)
    }
}

impl SwfStreamError {
    /// Whether this error is a cooperative abort (parse- or clean-phase),
    /// as opposed to malformed input.
    pub fn is_aborted(&self) -> bool {
        matches!(
            self,
            SwfStreamError::Clean(_)
                | SwfStreamError::Parse(ParseError {
                    kind: ParseErrorKind::Aborted,
                    ..
                })
        )
    }
}

/// Parses and cleans a trace in one streamed pass, returning the cleaned
/// trace and the cleaning summary.
///
/// Bit-identical to `parse_swf_with_abort` + `clean_trace_with_abort` on
/// the same input (same records, same order, same [`CleanSummary`]), but
/// with peak memory O(records surviving the validity filters) instead of
/// O(file):
///
/// * the header-independent validity filters (shape, unstarted status) run
///   record-by-record as lines are parsed, so invalid records are never
///   buffered;
/// * the header-dependent steps (oversize drop against `MaxProcs`, runtime
///   clamping — ordered after the oversize drop, as in the in-memory
///   cleaner) run once the stream ends and the header is final;
/// * the flurry pass is the *same code* as the in-memory cleaner's
///   (`flurry_pass`), sort included.
///
/// The per-record checks are mutually exclusive per record, so splitting
/// pass 1 across the stream boundary cannot change which counter a record
/// lands in.
pub fn clean_swf_stream<R: BufRead>(
    mut stream: SwfStream<'_, R>,
    cfg: &CleanConfig,
) -> Result<(SwfTrace, CleanSummary), SwfStreamError> {
    let abort = stream.abort_flag();
    let mut summary = CleanSummary::default();

    // Pass 1a (streamed): header-independent validity filters. The parse
    // itself polls the abort flag per line, which strictly dominates the
    // in-memory cleaner's per-record poll in responsiveness.
    let mut kept: Vec<SwfRecord> = Vec::new();
    for rec in &mut stream {
        let r = rec?;
        let procs = r.effective_procs();
        let valid_shape = procs.is_some() && r.run_time > 0 && r.submit >= 0;
        if !valid_shape {
            summary.dropped_invalid += 1;
            continue;
        }
        if cfg.drop_unstarted && r.status == 5 && r.wait <= 0 && r.run_time <= 0 {
            summary.dropped_invalid += 1;
            continue;
        }
        kept.push(r);
    }

    // Pass 1b: the header is final now; apply the header-dependent drop
    // and the clamp, preserving the in-memory per-record check order
    // (oversize before clamp).
    let max_procs = stream.header().max_procs;
    let mut filtered: Vec<SwfRecord> = Vec::with_capacity(kept.len());
    for mut r in kept {
        if cfg.drop_oversize {
            if let (Some(max), Some(p)) = (max_procs, r.effective_procs()) {
                if p > max {
                    summary.dropped_oversize += 1;
                    continue;
                }
            }
        }
        if cfg.clamp_runtime_to_estimate && r.req_time > 0 && r.run_time > r.req_time {
            r.run_time = r.req_time;
            summary.clamped_runtime += 1;
        }
        filtered.push(r);
    }

    // Pass 2: flurry removal — shared verbatim with the in-memory cleaner.
    let records = flurry_pass(filtered, cfg, abort, &mut summary)?;
    Ok((
        SwfTrace {
            header: stream.into_header(),
            records,
        },
        summary,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_trace_with_abort;
    use crate::parse::{parse_swf, parse_swf_with_abort};

    const SAMPLE: &str = "\
; MaxProcs: 64
; Note: streaming sample
1 0 10 3600 4 -1 -1 4 7200 -1 1 12 3 -1 1 -1 -1 -1

2 60 -1 100 1 -1 -1 1 600 -1 1 13 3 -1 1 -1 -1 -1
3 90 -1 0 1 -1 -1 1 600 -1 1 13 3 -1 1 -1 -1 -1
4 120 -1 100 128 -1 -1 128 600 -1 1 13 3 -1 1 -1 -1 -1
";

    #[test]
    fn stream_matches_in_memory_parse() {
        let streamed = SwfStream::<&[u8]>::new(SAMPLE.as_bytes())
            .collect_trace()
            .unwrap();
        let in_memory = parse_swf(SAMPLE).unwrap();
        assert_eq!(streamed, in_memory);
    }

    #[test]
    fn header_accumulates_during_iteration() {
        let mut s = SwfStream::<&[u8]>::new(SAMPLE.as_bytes());
        assert_eq!(s.header().max_procs, None);
        let first = s.next().unwrap().unwrap();
        assert_eq!(first.job_id, 1);
        assert_eq!(s.header().max_procs, Some(64));
    }

    #[test]
    fn stream_is_fused_after_error() {
        let mut s = SwfStream::<&[u8]>::new("1 2 3\n4 5 6\n".as_bytes());
        assert!(s.next().unwrap().is_err());
        assert!(s.next().is_none());
        assert!(s.next().is_none());
    }

    #[test]
    fn raised_abort_stops_stream_at_line_one() {
        let flag = AtomicBool::new(true);
        let mut s = SwfStream::with_abort(SAMPLE.as_bytes(), Some(&flag));
        let err = s.next().unwrap().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Aborted);
        assert_eq!(err.line, 1);
        // Identical to the in-memory behaviour.
        let in_memory = parse_swf_with_abort(SAMPLE, Some(&flag)).unwrap_err();
        assert_eq!(err, in_memory);
    }

    #[test]
    fn empty_input_with_raised_flag_is_empty_not_aborted() {
        // `parse_swf_with_abort("", raised)` yields Ok(empty): there is no
        // line to poll on. The stream must agree.
        let flag = AtomicBool::new(true);
        let mut s = SwfStream::with_abort("".as_bytes(), Some(&flag));
        assert!(s.next().is_none());
        assert_eq!(
            parse_swf_with_abort("", Some(&flag)).unwrap(),
            SwfTrace::default()
        );
    }

    #[test]
    fn clean_stream_matches_in_memory_clean() {
        let cfg = CleanConfig::default();
        let (streamed, s1) =
            clean_swf_stream(SwfStream::<&[u8]>::new(SAMPLE.as_bytes()), &cfg).unwrap();
        let mut in_memory = parse_swf(SAMPLE).unwrap();
        let s2 = clean_trace_with_abort(&mut in_memory, &cfg, None).unwrap();
        assert_eq!(streamed, in_memory);
        assert_eq!(s1, s2);
        // Job 3 (zero runtime) dropped invalid; job 4 (128 > 64) oversize.
        assert_eq!(s1.dropped_invalid, 1);
        assert_eq!(s1.dropped_oversize, 1);
        assert_eq!(streamed.records.len(), 2);
    }

    #[test]
    fn clean_stream_propagates_parse_errors() {
        let cfg = CleanConfig::default();
        let err =
            clean_swf_stream(SwfStream::<&[u8]>::new("garbage\n".as_bytes()), &cfg).unwrap_err();
        assert!(matches!(err, SwfStreamError::Parse(_)));
        assert!(!err.is_aborted());
    }

    #[test]
    fn clean_stream_abort_is_flagged_as_such() {
        let flag = AtomicBool::new(true);
        let cfg = CleanConfig::default();
        let err = clean_swf_stream(SwfStream::with_abort(SAMPLE.as_bytes(), Some(&flag)), &cfg)
            .unwrap_err();
        assert!(err.is_aborted());
    }

    #[test]
    fn crlf_lines_parse_like_lf() {
        let crlf = SAMPLE.replace('\n', "\r\n");
        let a = SwfStream::<&[u8]>::new(crlf.as_bytes())
            .collect_trace()
            .unwrap();
        let b = parse_swf(SAMPLE).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn io_error_mid_stream_is_reported_with_line() {
        struct Flaky {
            served: bool,
        }
        impl std::io::Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.served {
                    Err(std::io::Error::other("disk on fire"))
                } else {
                    self.served = true;
                    let line = b"1 0 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n";
                    buf[..line.len()].copy_from_slice(line);
                    Ok(line.len())
                }
            }
        }
        let reader = std::io::BufReader::new(Flaky { served: false });
        let mut s = SwfStream::<_>::new(reader);
        assert!(s.next().unwrap().is_ok());
        let err = s.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::Io { .. }));
        assert!(err.to_string().contains("disk on fire"));
        assert!(s.next().is_none(), "fused after I/O error");
    }
}
