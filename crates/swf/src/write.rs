//! SWF text output.

use std::fmt::Write as _;

use crate::record::SwfTrace;

/// Serialises a trace back to SWF text.
///
/// Typed header directives are emitted first, followed by the preserved
/// `extra` comment lines, then one data line per record. Round-trips with
/// [`crate::parse_swf`] up to comment ordering and whitespace.
pub fn write_swf(trace: &SwfTrace) -> String {
    let mut out = String::new();
    let h = &trace.header;
    if let Some(v) = h.max_procs {
        let _ = writeln!(out, "; MaxProcs: {v}");
    }
    if let Some(v) = h.max_runtime {
        let _ = writeln!(out, "; MaxRuntime: {v}");
    }
    if let Some(v) = h.max_jobs {
        let _ = writeln!(out, "; MaxJobs: {v}");
    }
    if let Some(v) = h.unix_start_time {
        let _ = writeln!(out, "; UnixStartTime: {v}");
    }
    for line in &h.extra {
        let _ = writeln!(out, "; {line}");
    }
    for r in &trace.records {
        let f = r.fields();
        let mut first = true;
        for v in f {
            if first {
                first = false;
            } else {
                out.push(' ');
            }
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_swf;
    use crate::record::{SwfHeader, SwfRecord};

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(128),
                max_runtime: Some(86400),
                max_jobs: Some(3),
                unix_start_time: Some(1_000_000),
                extra: vec!["Computer: IBM SP2".to_string()],
            },
            records: vec![
                SwfRecord::simple(1, 0, 100, 4, 200),
                SwfRecord::simple(2, 50, 7200, 128, 86400),
                SwfRecord::unknown(),
            ],
        };
        let text = write_swf(&trace);
        let back = parse_swf(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_writes_nothing_but_parses_back() {
        let t = SwfTrace::default();
        let text = write_swf(&t);
        assert_eq!(parse_swf(&text).unwrap(), t);
    }

    #[test]
    fn data_line_format() {
        let trace = SwfTrace {
            header: SwfHeader::default(),
            records: vec![SwfRecord::simple(1, 2, 3, 4, 5)],
        };
        let text = write_swf(&trace);
        assert_eq!(
            text.trim(),
            "1 2 -1 3 4 -1 -1 4 5 -1 1 -1 -1 -1 -1 -1 -1 -1"
        );
    }
}
