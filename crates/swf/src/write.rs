//! SWF text output and deterministic synthetic trace generation.

use std::fmt::Write as _;
use std::io;

use crate::record::{SwfRecord, SwfTrace};

/// Serialises a trace back to SWF text.
///
/// Typed header directives are emitted first, followed by the preserved
/// `extra` comment lines, then one data line per record. Round-trips with
/// [`crate::parse_swf`] up to comment ordering and whitespace.
pub fn write_swf(trace: &SwfTrace) -> String {
    let mut out = String::new();
    let h = &trace.header;
    if let Some(v) = h.max_procs {
        let _ = writeln!(out, "; MaxProcs: {v}");
    }
    if let Some(v) = h.max_runtime {
        let _ = writeln!(out, "; MaxRuntime: {v}");
    }
    if let Some(v) = h.max_jobs {
        let _ = writeln!(out, "; MaxJobs: {v}");
    }
    if let Some(v) = h.unix_start_time {
        let _ = writeln!(out, "; UnixStartTime: {v}");
    }
    for line in &h.extra {
        let _ = writeln!(out, "; {line}");
    }
    for r in &trace.records {
        push_data_line(&mut out, r);
    }
    out
}

/// Appends one space-separated 18-field data line (plus newline) to `out`.
fn push_data_line(out: &mut String, r: &SwfRecord) {
    let f = r.fields();
    let mut first = true;
    for v in f {
        if first {
            first = false;
        } else {
            out.push(' ');
        }
        let _ = write!(out, "{v}");
    }
    out.push('\n');
}

/// Streams a trace as SWF text straight to an [`io::Write`] sink, without
/// building the whole file in memory. Byte-identical to [`write_swf`].
pub fn write_swf_to<W: io::Write>(w: &mut W, trace: &SwfTrace) -> io::Result<()> {
    let mut line = String::new();
    let h = &trace.header;
    if let Some(v) = h.max_procs {
        writeln!(w, "; MaxProcs: {v}")?;
    }
    if let Some(v) = h.max_runtime {
        writeln!(w, "; MaxRuntime: {v}")?;
    }
    if let Some(v) = h.max_jobs {
        writeln!(w, "; MaxJobs: {v}")?;
    }
    if let Some(v) = h.unix_start_time {
        writeln!(w, "; UnixStartTime: {v}")?;
    }
    for extra in &h.extra {
        writeln!(w, "; {extra}")?;
    }
    for r in &trace.records {
        line.clear();
        push_data_line(&mut line, r);
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// The machine size [`generate_swf`] assumes when none is given: 1024
/// processors, a mid-size machine by the archive's standards.
pub const GEN_SWF_DEFAULT_PROCS: u32 = 1024;

/// Writes a deterministic synthetic SWF trace straight to `w` — the
/// engine behind `bsld-repro gen-swf`, so large-trace tests and benches
/// never need committed multi-megabyte fixtures.
///
/// The generator is integer-only (a splitmix64 stream seeded by `seed`),
/// so the same `(jobs, seed, max_procs)` triple produces byte-identical
/// output on every platform. Job shapes are chosen to survive the default
/// cleaning pass and to offer roughly 70 % load on a `max_procs`-processor
/// machine: runtimes are uniform on [60 s, 3659 s], sizes are powers of
/// two from 1 to 128 (capped at `max_procs`), estimates are 1–3× the
/// runtime, and interarrival gaps are tuned so the submitted area matches
/// the target load. Users cycle over 97 distinct ids, far too slowly to
/// trip the flurry filter.
pub fn generate_swf<W: io::Write>(
    w: &mut W,
    jobs: u64,
    seed: u64,
    max_procs: u32,
) -> io::Result<()> {
    let max_procs = max_procs.max(1);
    writeln!(w, "; MaxProcs: {max_procs}")?;
    writeln!(w, "; MaxJobs: {jobs}")?;
    writeln!(w, "; UnixStartTime: 0")?;
    writeln!(w, "; Computer: bsld-repro gen-swf seed={seed}")?;
    // Mean job area ≈ 31.9 cpus × 1859 s ≈ 59 300 cpu·s; for 70 % load the
    // mean interarrival gap must be area / (0.7 × max_procs).
    let mean_gap = (84_714u64 / u64::from(max_procs)).max(1);
    let mut state = seed;
    let mut next = move || -> u64 { splitmix64(&mut state) };
    let mut submit: i64 = 0;
    let mut line = String::new();
    for id in 1..=jobs {
        submit += (next() % (2 * mean_gap + 1)) as i64;
        let run_time = 60 + (next() % 3600) as i64;
        let procs = (1u32 << (next() % 8)).min(max_procs) as i64;
        let req_time = run_time * (1 + (next() % 3) as i64);
        let user = (next() % 97) as i64;
        let r = SwfRecord {
            job_id: id as i64,
            submit,
            run_time,
            alloc_procs: procs,
            req_procs: procs,
            req_time,
            status: 1,
            user,
            ..SwfRecord::unknown()
        };
        line.clear();
        push_data_line(&mut line, &r);
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// splitmix64: the classic 64-bit mixing PRNG (public-domain constants).
/// Integer-only and platform-independent — exactly what a deterministic
/// trace generator needs, without pulling a `rand` dependency into this
/// crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_swf;
    use crate::record::{SwfHeader, SwfRecord};

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(128),
                max_runtime: Some(86400),
                max_jobs: Some(3),
                unix_start_time: Some(1_000_000),
                extra: vec!["Computer: IBM SP2".to_string()],
            },
            records: vec![
                SwfRecord::simple(1, 0, 100, 4, 200),
                SwfRecord::simple(2, 50, 7200, 128, 86400),
                SwfRecord::unknown(),
            ],
        };
        let text = write_swf(&trace);
        let back = parse_swf(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_writes_nothing_but_parses_back() {
        let t = SwfTrace::default();
        let text = write_swf(&t);
        assert_eq!(parse_swf(&text).unwrap(), t);
    }

    #[test]
    fn data_line_format() {
        let trace = SwfTrace {
            header: SwfHeader::default(),
            records: vec![SwfRecord::simple(1, 2, 3, 4, 5)],
        };
        let text = write_swf(&trace);
        assert_eq!(
            text.trim(),
            "1 2 -1 3 4 -1 -1 4 5 -1 1 -1 -1 -1 -1 -1 -1 -1"
        );
    }

    #[test]
    fn write_swf_to_matches_write_swf() {
        let trace = SwfTrace {
            header: SwfHeader {
                max_procs: Some(32),
                extra: vec!["Computer: test".to_string()],
                ..Default::default()
            },
            records: vec![SwfRecord::simple(1, 0, 100, 4, 200), SwfRecord::unknown()],
        };
        let mut bytes = Vec::new();
        write_swf_to(&mut bytes, &trace).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), write_swf(&trace));
    }

    #[test]
    fn generated_trace_is_deterministic_and_seed_sensitive() {
        let gen = |jobs, seed| {
            let mut buf = Vec::new();
            generate_swf(&mut buf, jobs, seed, GEN_SWF_DEFAULT_PROCS).unwrap();
            String::from_utf8(buf).unwrap()
        };
        assert_eq!(gen(200, 42), gen(200, 42), "same seed, same bytes");
        assert_ne!(
            gen(200, 42),
            gen(200, 43),
            "different seed, different trace"
        );
        // A shorter run is a strict prefix apart from the MaxJobs line.
        let long = gen(200, 42);
        let short = gen(100, 42);
        assert_eq!(
            long.replace("; MaxJobs: 200", "; MaxJobs: 100")
                .lines()
                .take(104)
                .collect::<Vec<_>>(),
            short.lines().collect::<Vec<_>>()
        );
    }

    #[test]
    fn generated_trace_parses_and_survives_cleaning() {
        let mut buf = Vec::new();
        generate_swf(&mut buf, 500, 7, 256).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut trace = parse_swf(&text).unwrap();
        assert_eq!(trace.header.max_procs, Some(256));
        assert_eq!(trace.records.len(), 500);
        let summary = crate::clean::clean_trace(&mut trace, &crate::clean::CleanConfig::default());
        assert_eq!(
            summary,
            crate::clean::CleanSummary::default(),
            "generated jobs must pass the default cleaner untouched"
        );
        assert_eq!(trace.records.len(), 500);
        assert!(trace
            .records
            .iter()
            .all(|r| r.alloc_procs >= 1 && r.alloc_procs <= 256 && r.run_time >= 60));
    }
}
