//! Trace cleaning.
//!
//! The paper uses the archive's *cleaned* traces: versions with flurries of
//! activity by individual users removed, because they "may not be
//! representative of normal usage". This module reimplements that cleaning
//! plus the usual simulator hygiene steps, and the 5 000-job segment
//! selection with arrival rebasing.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::record::{SwfRecord, SwfTrace};

/// How many records are processed between two abort-flag polls in
/// [`clean_trace_with_abort`] (same granularity rationale as the parser's
/// line poll).
const ABORT_POLL_RECORDS: usize = 4096;

/// The abort flag was raised mid-clean; the trace's record list is left in
/// an unspecified (partially drained) state and must not be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanAborted;

impl std::fmt::Display for CleanAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace cleaning aborted (abort flag raised)")
    }
}

impl std::error::Error for CleanAborted {}

/// Parameters of [`clean_trace`].
#[derive(Debug, Clone)]
pub struct CleanConfig {
    /// Drop jobs whose status marks them cancelled before start (status 5
    /// with no runtime) or failed with zero runtime.
    pub drop_unstarted: bool,
    /// Remove user flurries: if one user submits more than
    /// `flurry_max_jobs` jobs inside any `flurry_window_secs` window, the
    /// excess jobs are dropped.
    pub flurry_max_jobs: usize,
    /// The flurry detection window, seconds.
    pub flurry_window_secs: u64,
    /// Clamp `run_time` to `req_time` when the job overran its estimate
    /// (the scheduler treats estimates as binding kill limits).
    pub clamp_runtime_to_estimate: bool,
    /// Drop jobs requesting more processors than the machine has
    /// (requires the header's `MaxProcs`).
    pub drop_oversize: bool,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            drop_unstarted: true,
            // The archive's cleaned logs remove bursts of hundreds of jobs
            // by single users; 50 jobs in 15 minutes is a conservative
            // reimplementation of that filter.
            flurry_max_jobs: 50,
            flurry_window_secs: 900,
            clamp_runtime_to_estimate: true,
            drop_oversize: true,
        }
    }
}

/// What [`clean_trace`] removed or altered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleanSummary {
    /// Jobs dropped for invalid size/runtime or unstarted status.
    pub dropped_invalid: usize,
    /// Jobs dropped by the flurry filter.
    pub dropped_flurry: usize,
    /// Jobs dropped for exceeding the machine size.
    pub dropped_oversize: usize,
    /// Jobs whose runtime was clamped to the estimate.
    pub clamped_runtime: usize,
}

/// Cleans a trace in place and reports what changed.
pub fn clean_trace(trace: &mut SwfTrace, cfg: &CleanConfig) -> CleanSummary {
    // The error arm is unreachable: without an abort flag the poll can
    // never trip. Defaulting keeps this signature infallible without
    // introducing a panic path.
    clean_trace_with_abort(trace, cfg, None).unwrap_or_default()
}

/// As [`clean_trace`], polling `abort` every few thousand records in both
/// cleaning passes. On [`CleanAborted`] the trace's record list is
/// unspecified (partially processed) and must be discarded — the campaign
/// layer maps this straight to a failed, budget-attributed unit.
pub fn clean_trace_with_abort(
    trace: &mut SwfTrace,
    cfg: &CleanConfig,
    abort: Option<&AtomicBool>,
) -> Result<CleanSummary, CleanAborted> {
    let raised = |i: usize| {
        i.is_multiple_of(ABORT_POLL_RECORDS)
            && abort.is_some_and(|flag| flag.load(Ordering::SeqCst))
    };
    let mut summary = CleanSummary::default();
    let max_procs = trace.header.max_procs;

    // Pass 1: validity filters and runtime clamping.
    let mut kept: Vec<SwfRecord> = Vec::with_capacity(trace.records.len());
    for (i, mut r) in trace.records.drain(..).enumerate() {
        if raised(i) {
            return Err(CleanAborted);
        }
        let procs = r.effective_procs();
        let valid_shape = procs.is_some() && r.run_time > 0 && r.submit >= 0;
        if !valid_shape {
            summary.dropped_invalid += 1;
            continue;
        }
        if cfg.drop_unstarted && r.status == 5 && r.wait <= 0 && r.run_time <= 0 {
            summary.dropped_invalid += 1;
            continue;
        }
        if cfg.drop_oversize {
            if let (Some(max), Some(p)) = (max_procs, procs) {
                if p > max {
                    summary.dropped_oversize += 1;
                    continue;
                }
            }
        }
        if cfg.clamp_runtime_to_estimate && r.req_time > 0 && r.run_time > r.req_time {
            r.run_time = r.req_time;
            summary.clamped_runtime += 1;
        }
        kept.push(r);
    }

    // Pass 2: flurry removal (shared with the streaming cleaner).
    trace.records = flurry_pass(kept, cfg, abort, &mut summary)?;
    Ok(summary)
}

/// Flurry removal: jobs are scanned in submit order per user; inside any
/// sliding window of `flurry_window_secs`, at most `flurry_max_jobs` jobs
/// per user survive. Sorts its input by `(submit, job_id)` first.
///
/// Shared verbatim between [`clean_trace_with_abort`] and the streaming
/// cleaner ([`crate::clean_swf_stream`]) so the two paths stay
/// bit-identical by construction.
pub(crate) fn flurry_pass(
    mut kept: Vec<SwfRecord>,
    cfg: &CleanConfig,
    abort: Option<&AtomicBool>,
    summary: &mut CleanSummary,
) -> Result<Vec<SwfRecord>, CleanAborted> {
    let raised = |i: usize| {
        i.is_multiple_of(ABORT_POLL_RECORDS)
            && abort.is_some_and(|flag| flag.load(Ordering::SeqCst))
    };
    kept.sort_by_key(|r| (r.submit, r.job_id));
    let mut recent: std::collections::HashMap<i64, std::collections::VecDeque<i64>> =
        std::collections::HashMap::new();
    let mut out: Vec<SwfRecord> = Vec::with_capacity(kept.len());
    for (i, r) in kept.into_iter().enumerate() {
        if raised(i) {
            return Err(CleanAborted);
        }
        if r.user >= 0 && cfg.flurry_max_jobs > 0 {
            let window = recent.entry(r.user).or_default();
            while let Some(&front) = window.front() {
                if (r.submit - front) as u64 > cfg.flurry_window_secs {
                    window.pop_front();
                } else {
                    break;
                }
            }
            if window.len() >= cfg.flurry_max_jobs {
                summary.dropped_flurry += 1;
                continue;
            }
            window.push_back(r.submit);
        }
        out.push(r);
    }
    Ok(out)
}

/// Selects a `count`-job segment starting at `start` (by index in submit
/// order) and rebases submit times so the earliest selected job arrives
/// at 0.
///
/// The rebase uses the *minimum* submit time of the segment, not the first
/// record's: SWF logs are not guaranteed to be sorted by submit time (job
/// IDs are the archive's primary order, and some logs interleave queues),
/// and subtracting the first record's submit from an earlier one would
/// drive `submit` negative — an absurd arrival the cleaner later drops, or
/// an underflow for unsigned consumers.
///
/// The paper simulates 5 000-job parts of each workload, "selected so that
/// they do not have many jobs removed".
pub fn select_segment(trace: &SwfTrace, start: usize, count: usize) -> SwfTrace {
    let mut records: Vec<SwfRecord> = trace
        .records
        .iter()
        .skip(start)
        .take(count)
        .copied()
        .collect();
    if let Some(base) = records.iter().map(|r| r.submit).min() {
        for r in &mut records {
            r.submit -= base;
        }
    }
    let mut header = trace.header.clone();
    header.max_jobs = Some(records.len() as u64);
    SwfTrace { header, records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SwfHeader;

    fn trace_with(records: Vec<SwfRecord>) -> SwfTrace {
        SwfTrace {
            header: SwfHeader {
                max_procs: Some(64),
                ..Default::default()
            },
            records,
        }
    }

    #[test]
    fn raised_abort_flag_stops_the_clean() {
        let mut t = trace_with(vec![SwfRecord::simple(1, 0, 100, 4, 100)]);
        let flag = AtomicBool::new(true);
        let err = clean_trace_with_abort(&mut t, &CleanConfig::default(), Some(&flag)).unwrap_err();
        assert_eq!(err, CleanAborted);
        assert!(err.to_string().contains("aborted"));
    }

    #[test]
    fn unraised_abort_flag_changes_nothing() {
        let records = vec![
            SwfRecord::simple(1, 0, 100, 4, 100),
            SwfRecord::simple(2, 0, 0, 4, 100), // zero runtime: dropped
        ];
        let mut with = trace_with(records.clone());
        let mut without = trace_with(records);
        let s1 = clean_trace_with_abort(&mut with, &CleanConfig::default(), None).unwrap();
        let s2 = clean_trace(&mut without, &CleanConfig::default());
        assert_eq!(s1, s2);
        assert_eq!(with, without);
    }

    #[test]
    fn drops_invalid_jobs() {
        let mut t = trace_with(vec![
            SwfRecord::simple(1, 0, 100, 4, 100),
            SwfRecord::simple(2, 0, 0, 4, 100),    // zero runtime
            SwfRecord::simple(3, 0, 100, -1, 100), // unknown size
            SwfRecord::simple(4, -5, 100, 4, 100), // negative submit
        ]);
        let s = clean_trace(&mut t, &CleanConfig::default());
        assert_eq!(t.records.len(), 1);
        assert_eq!(s.dropped_invalid, 3);
    }

    #[test]
    fn clamps_overrun_runtimes() {
        let mut r = SwfRecord::simple(1, 0, 500, 4, 100);
        r.req_time = 100;
        let mut t = trace_with(vec![r]);
        let s = clean_trace(&mut t, &CleanConfig::default());
        assert_eq!(s.clamped_runtime, 1);
        assert_eq!(t.records[0].run_time, 100);
    }

    #[test]
    fn drops_oversize_jobs() {
        let mut t = trace_with(vec![
            SwfRecord::simple(1, 0, 100, 65, 100), // 65 > MaxProcs 64
            SwfRecord::simple(2, 0, 100, 64, 100),
        ]);
        let s = clean_trace(&mut t, &CleanConfig::default());
        assert_eq!(s.dropped_oversize, 1);
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.records[0].job_id, 2);
    }

    #[test]
    fn flurry_filter_caps_burst_users() {
        let mut records = Vec::new();
        // User 1 submits 60 jobs in one second — a flurry.
        for i in 0..60 {
            let mut r = SwfRecord::simple(i, 0, 100, 1, 100);
            r.user = 1;
            records.push(r);
        }
        // User 2 submits 10 ordinary jobs.
        for i in 0..10 {
            let mut r = SwfRecord::simple(100 + i, i * 3600, 100, 1, 100);
            r.user = 2;
            records.push(r);
        }
        let mut t = trace_with(records);
        let cfg = CleanConfig::default();
        let s = clean_trace(&mut t, &cfg);
        assert_eq!(s.dropped_flurry, 10, "60 - 50 cap");
        let user1: usize = t.records.iter().filter(|r| r.user == 1).count();
        assert_eq!(user1, 50);
        let user2: usize = t.records.iter().filter(|r| r.user == 2).count();
        assert_eq!(user2, 10);
    }

    #[test]
    fn flurry_window_slides() {
        // 50 jobs at t=0 (fills window), then 1 at t=1000 (outside the
        // 900 s window) — all survive.
        let mut records = Vec::new();
        for i in 0..50 {
            let mut r = SwfRecord::simple(i, 0, 100, 1, 100);
            r.user = 7;
            records.push(r);
        }
        let mut late = SwfRecord::simple(99, 1000, 100, 1, 100);
        late.user = 7;
        records.push(late);
        let mut t = trace_with(records);
        let s = clean_trace(&mut t, &CleanConfig::default());
        assert_eq!(s.dropped_flurry, 0);
        assert_eq!(t.records.len(), 51);
    }

    #[test]
    fn anonymous_users_bypass_flurry_filter() {
        let mut records = Vec::new();
        for i in 0..80 {
            records.push(SwfRecord::simple(i, 0, 100, 1, 100)); // user = -1
        }
        let mut t = trace_with(records);
        let s = clean_trace(&mut t, &CleanConfig::default());
        assert_eq!(s.dropped_flurry, 0);
        assert_eq!(t.records.len(), 80);
    }

    #[test]
    fn segment_selection_rebases_arrivals() {
        let t = trace_with(vec![
            SwfRecord::simple(1, 1000, 100, 1, 100),
            SwfRecord::simple(2, 2000, 100, 1, 100),
            SwfRecord::simple(3, 3000, 100, 1, 100),
            SwfRecord::simple(4, 4000, 100, 1, 100),
        ]);
        let seg = select_segment(&t, 1, 2);
        assert_eq!(seg.records.len(), 2);
        assert_eq!(seg.records[0].submit, 0);
        assert_eq!(seg.records[1].submit, 1000);
        assert_eq!(seg.header.max_jobs, Some(2));
        assert_eq!(seg.header.max_procs, Some(64));
    }

    #[test]
    fn segment_of_shuffled_trace_rebases_by_minimum() {
        // A log NOT sorted by submit time: the first record of the segment
        // arrives later than its successors. Rebasing by the first record
        // would push the others negative.
        let t = trace_with(vec![
            SwfRecord::simple(1, 9_000, 100, 1, 100),
            SwfRecord::simple(2, 5_000, 100, 1, 100),
            SwfRecord::simple(3, 7_000, 100, 1, 100),
            SwfRecord::simple(4, 6_000, 100, 1, 100),
        ]);
        let seg = select_segment(&t, 0, 4);
        assert!(
            seg.records.iter().all(|r| r.submit >= 0),
            "no arrival may go negative: {:?}",
            seg.records.iter().map(|r| r.submit).collect::<Vec<_>>()
        );
        // The earliest job (id 2) lands at 0; relative offsets survive.
        let by_id = |id: i64| seg.records.iter().find(|r| r.job_id == id).unwrap();
        assert_eq!(by_id(2).submit, 0);
        assert_eq!(by_id(4).submit, 1_000);
        assert_eq!(by_id(3).submit, 2_000);
        assert_eq!(by_id(1).submit, 4_000);
    }

    #[test]
    fn segment_beyond_end_is_truncated() {
        let t = trace_with(vec![SwfRecord::simple(1, 5, 100, 1, 100)]);
        let seg = select_segment(&t, 0, 10);
        assert_eq!(seg.records.len(), 1);
        let empty = select_segment(&t, 5, 10);
        assert!(empty.records.is_empty());
    }
}
