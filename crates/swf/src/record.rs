//! SWF records and headers.

/// One job line of an SWF trace — the 18 standard fields.
///
/// All fields use the archive convention that `-1` means *unknown*.
/// Times are in seconds; `submit` is relative to the trace's
/// `UnixStartTime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwfRecord {
    /// 1. Job number (1-based in the archive).
    pub job_id: i64,
    /// 2. Submit time, seconds since trace start.
    pub submit: i64,
    /// 3. Wait time in the original system, seconds.
    pub wait: i64,
    /// 4. Actual run time, seconds.
    pub run_time: i64,
    /// 5. Number of allocated processors.
    pub alloc_procs: i64,
    /// 6. Average CPU time used per processor, seconds.
    pub avg_cpu_time: i64,
    /// 7. Used memory per node, KB.
    pub used_memory: i64,
    /// 8. Requested number of processors.
    pub req_procs: i64,
    /// 9. Requested (estimated) run time, seconds.
    pub req_time: i64,
    /// 10. Requested memory per node, KB.
    pub req_memory: i64,
    /// 11. Completion status (1 = completed, 0 = failed, 5 = cancelled, …).
    pub status: i64,
    /// 12. User id.
    pub user: i64,
    /// 13. Group id.
    pub group: i64,
    /// 14. Executable (application) number.
    pub executable: i64,
    /// 15. Queue number.
    pub queue: i64,
    /// 16. Partition number.
    pub partition: i64,
    /// 17. Preceding job number (workflow dependency).
    pub preceding_job: i64,
    /// 18. Think time from preceding job, seconds.
    pub think_time: i64,
}

impl SwfRecord {
    /// A record with every field unknown (`-1`).
    pub fn unknown() -> Self {
        SwfRecord {
            job_id: -1,
            submit: -1,
            wait: -1,
            run_time: -1,
            alloc_procs: -1,
            avg_cpu_time: -1,
            used_memory: -1,
            req_procs: -1,
            req_time: -1,
            req_memory: -1,
            status: -1,
            user: -1,
            group: -1,
            executable: -1,
            queue: -1,
            partition: -1,
            preceding_job: -1,
            think_time: -1,
        }
    }

    /// Convenience constructor for the fields the simulator needs.
    pub fn simple(job_id: i64, submit: i64, run_time: i64, procs: i64, req_time: i64) -> Self {
        SwfRecord {
            job_id,
            submit,
            run_time,
            alloc_procs: procs,
            req_procs: procs,
            req_time,
            status: 1,
            ..SwfRecord::unknown()
        }
    }

    /// The processor count the simulator should use: allocated if known,
    /// otherwise requested.
    pub fn effective_procs(&self) -> Option<u32> {
        let p = if self.alloc_procs > 0 {
            self.alloc_procs
        } else {
            self.req_procs
        };
        (p > 0).then_some(p as u32)
    }

    /// The runtime estimate the simulator should use: the user request if
    /// known, otherwise the actual runtime.
    pub fn effective_req_time(&self) -> Option<u64> {
        let t = if self.req_time > 0 {
            self.req_time
        } else {
            self.run_time
        };
        (t > 0).then_some(t as u64)
    }

    /// The 18 fields in file order.
    pub fn fields(&self) -> [i64; 18] {
        [
            self.job_id,
            self.submit,
            self.wait,
            self.run_time,
            self.alloc_procs,
            self.avg_cpu_time,
            self.used_memory,
            self.req_procs,
            self.req_time,
            self.req_memory,
            self.status,
            self.user,
            self.group,
            self.executable,
            self.queue,
            self.partition,
            self.preceding_job,
            self.think_time,
        ]
    }

    /// Builds a record from the 18 fields in file order.
    pub fn from_fields(f: [i64; 18]) -> Self {
        SwfRecord {
            job_id: f[0],
            submit: f[1],
            wait: f[2],
            run_time: f[3],
            alloc_procs: f[4],
            avg_cpu_time: f[5],
            used_memory: f[6],
            req_procs: f[7],
            req_time: f[8],
            req_memory: f[9],
            status: f[10],
            user: f[11],
            group: f[12],
            executable: f[13],
            queue: f[14],
            partition: f[15],
            preceding_job: f[16],
            think_time: f[17],
        }
    }
}

/// Header directives of an SWF file (`; Key: Value` comment lines).
///
/// Only the directives the reproduction uses are parsed into typed fields;
/// everything else is preserved verbatim in `extra` so traces round-trip.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwfHeader {
    /// `MaxProcs` — the machine size.
    pub max_procs: Option<u32>,
    /// `MaxRuntime` — the longest permitted runtime, seconds.
    pub max_runtime: Option<u64>,
    /// `MaxJobs` — number of jobs the file claims to hold.
    pub max_jobs: Option<u64>,
    /// `UnixStartTime` — epoch of `submit = 0`.
    pub unix_start_time: Option<i64>,
    /// Unparsed header lines (without the leading `;`), in order.
    pub extra: Vec<String>,
}

/// A parsed SWF trace: header plus job records in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwfTrace {
    /// Header directives.
    pub header: SwfHeader,
    /// Job records in file order.
    pub records: Vec<SwfRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_roundtrip() {
        let mut r = SwfRecord::unknown();
        r.job_id = 7;
        r.submit = 100;
        r.run_time = 3600;
        r.req_procs = 16;
        let f = r.fields();
        assert_eq!(SwfRecord::from_fields(f), r);
    }

    #[test]
    fn effective_procs_prefers_allocated() {
        let mut r = SwfRecord::unknown();
        assert_eq!(r.effective_procs(), None);
        r.req_procs = 8;
        assert_eq!(r.effective_procs(), Some(8));
        r.alloc_procs = 4;
        assert_eq!(r.effective_procs(), Some(4));
    }

    #[test]
    fn effective_req_time_falls_back_to_runtime() {
        let mut r = SwfRecord::unknown();
        assert_eq!(r.effective_req_time(), None);
        r.run_time = 120;
        assert_eq!(r.effective_req_time(), Some(120));
        r.req_time = 600;
        assert_eq!(r.effective_req_time(), Some(600));
    }

    #[test]
    fn simple_constructor() {
        let r = SwfRecord::simple(1, 0, 100, 4, 200);
        assert_eq!(r.status, 1);
        assert_eq!(r.effective_procs(), Some(4));
        assert_eq!(r.effective_req_time(), Some(200));
        assert_eq!(r.used_memory, -1);
    }
}
