//! SWF text parsing.

use std::sync::atomic::AtomicBool;

use crate::record::{SwfHeader, SwfRecord, SwfTrace};
use crate::stream::SwfStream;

/// How many input lines are parsed between two abort-flag polls. Archive
/// traces run to millions of lines, so the parse phase must observe a
/// cooperative cancellation long before the event loop ever starts; one
/// atomic load per 4096 lines is far below measurement noise.
pub(crate) const ABORT_POLL_LINES: usize = 4096;

/// A parse failure, with the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of SWF parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A data line had fewer than 18 whitespace-separated fields.
    TooFewFields {
        /// Number of fields found.
        found: usize,
    },
    /// A field was not a valid integer.
    BadInteger {
        /// 1-based field index.
        field: usize,
        /// The offending token.
        token: String,
    },
    /// The abort flag passed to [`parse_swf_with_abort`] was raised; the
    /// parse stopped cooperatively without reading the rest of the input.
    Aborted,
    /// Reading the underlying byte stream failed (streaming parses only —
    /// [`crate::SwfStream`] reads from arbitrary [`std::io::BufRead`]
    /// sources, unlike the infallible in-memory `&str` path).
    Io {
        /// The I/O error, rendered to text (keeps this type `Eq`/`Clone`).
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ParseErrorKind::TooFewFields { found } => {
                write!(f, "line {}: expected 18 fields, found {found}", self.line)
            }
            ParseErrorKind::BadInteger { field, token } => {
                write!(
                    f,
                    "line {}: field {field} is not an integer: {token:?}",
                    self.line
                )
            }
            ParseErrorKind::Aborted => {
                write!(f, "line {}: parse aborted (abort flag raised)", self.line)
            }
            ParseErrorKind::Io { message } => {
                write!(f, "line {}: read failed: {message}", self.line)
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses SWF text into a [`SwfTrace`].
///
/// * Comment lines start with `;`. Lines of the form `; Key: Value` set the
///   typed header directives ([`SwfHeader`]); other comment lines are
///   preserved in `header.extra`.
/// * Data lines hold 18 whitespace-separated integers. Lines with *more*
///   than 18 fields are accepted (some archive files carry trailing extras);
///   the extras are ignored.
/// * Blank lines are skipped.
pub fn parse_swf(text: &str) -> Result<SwfTrace, ParseError> {
    parse_swf_with_abort(text, None)
}

/// As [`parse_swf`], polling `abort` every few thousand lines: a raised
/// flag stops the parse promptly with [`ParseErrorKind::Aborted`] instead
/// of materialising the rest of a multi-million-line trace.
///
/// This is how a campaign's `cell_budget_s` covers the parse/clean phase:
/// without the poll, a unit stuck parsing a huge trace would only notice
/// its expired budget once the event loop started.
///
/// Since the streaming rework this is a collect shim over
/// [`SwfStream`]: both paths run the same per-line code, so they cannot
/// drift apart.
pub fn parse_swf_with_abort(
    text: &str,
    abort: Option<&AtomicBool>,
) -> Result<SwfTrace, ParseError> {
    SwfStream::with_abort(text.as_bytes(), abort).collect_trace()
}

pub(crate) fn parse_header_line(comment: &str, header: &mut SwfHeader) {
    if let Some((key, value)) = comment.split_once(':') {
        let value = value.trim();
        match key.trim() {
            "MaxProcs" => {
                if let Ok(v) = value.parse() {
                    header.max_procs = Some(v);
                    return;
                }
            }
            "MaxRuntime" => {
                if let Ok(v) = value.parse() {
                    header.max_runtime = Some(v);
                    return;
                }
            }
            "MaxJobs" => {
                if let Ok(v) = value.parse() {
                    header.max_jobs = Some(v);
                    return;
                }
            }
            "UnixStartTime" => {
                if let Ok(v) = value.parse() {
                    header.unix_start_time = Some(v);
                    return;
                }
            }
            _ => {}
        }
    }
    header.extra.push(comment.to_string());
}

pub(crate) fn parse_data_line(line: &str, lineno: usize) -> Result<SwfRecord, ParseError> {
    let mut fields = [0i64; 18];
    let mut count = 0;
    for (i, tok) in line.split_whitespace().enumerate() {
        if i >= 18 {
            break; // tolerate trailing extras
        }
        fields[i] = tok.parse().map_err(|_| ParseError {
            line: lineno,
            kind: ParseErrorKind::BadInteger {
                field: i + 1,
                token: tok.to_string(),
            },
        })?;
        count = i + 1;
    }
    if count < 18 {
        return Err(ParseError {
            line: lineno,
            kind: ParseErrorKind::TooFewFields { found: count },
        });
    }
    Ok(SwfRecord::from_fields(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; MaxProcs: 430
; MaxRuntime: 64800
; MaxJobs: 2
; UnixStartTime: 832105380
; Note: synthetic sample
1 0 10 3600 4 -1 -1 4 7200 -1 1 12 3 -1 1 -1 -1 -1
2 60 -1 100 1 -1 -1 1 600 -1 1 13 3 -1 1 -1 -1 -1
";

    #[test]
    fn parses_header_and_records() {
        let t = parse_swf(SAMPLE).unwrap();
        assert_eq!(t.header.max_procs, Some(430));
        assert_eq!(t.header.max_runtime, Some(64800));
        assert_eq!(t.header.max_jobs, Some(2));
        assert_eq!(t.header.unix_start_time, Some(832105380));
        assert_eq!(
            t.header.extra,
            vec!["Version: 2.2", "Note: synthetic sample"]
        );
        assert_eq!(t.records.len(), 2);
        assert_eq!(t.records[0].job_id, 1);
        assert_eq!(t.records[0].run_time, 3600);
        assert_eq!(t.records[1].submit, 60);
        assert_eq!(t.records[1].wait, -1);
    }

    #[test]
    fn skips_blank_lines() {
        let t = parse_swf("\n\n1 0 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n\n").unwrap();
        assert_eq!(t.records.len(), 1);
    }

    #[test]
    fn too_few_fields_is_an_error() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, ParseErrorKind::TooFewFields { found: 3 });
        assert!(err.to_string().contains("expected 18 fields"));
    }

    #[test]
    fn bad_integer_is_an_error() {
        let err = parse_swf("1 x 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(
            err.kind,
            ParseErrorKind::BadInteger { field: 2, .. }
        ));
        assert!(err.to_string().contains("field 2"));
    }

    #[test]
    fn extra_fields_tolerated() {
        let t = parse_swf("1 0 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1 999 888\n").unwrap();
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.records[0].think_time, -1);
    }

    #[test]
    fn error_line_numbers_count_all_lines() {
        let text = "; comment\n\n1 2 3\n";
        let err = parse_swf(text).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unraised_abort_flag_changes_nothing() {
        let flag = AtomicBool::new(false);
        let with = parse_swf_with_abort(SAMPLE, Some(&flag)).unwrap();
        let without = parse_swf(SAMPLE).unwrap();
        assert_eq!(with, without);
    }

    #[test]
    fn raised_abort_flag_stops_the_parse() {
        let flag = AtomicBool::new(true);
        let err = parse_swf_with_abort(SAMPLE, Some(&flag)).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Aborted);
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("aborted"));
    }

    #[test]
    fn malformed_header_directive_is_kept_as_extra() {
        let t = parse_swf("; MaxProcs: lots\n").unwrap();
        assert_eq!(t.header.max_procs, None);
        assert_eq!(t.header.extra, vec!["MaxProcs: lots"]);
    }
}
