//! SWF → domain-model conversion.

use std::sync::atomic::{AtomicBool, Ordering};

use bsld_model::Job;
use bsld_simkernel::Time;

use crate::record::SwfRecord;

/// How many records are processed between two abort-flag polls in
/// [`records_to_jobs_with_abort`] (same granularity rationale as the
/// parser's line poll and the cleaner's record poll).
const ABORT_POLL_RECORDS: usize = 4096;

/// The abort flag was raised during a full-trace walk (conversion or
/// statistics); the walk stopped cooperatively and produced nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAborted;

impl std::fmt::Display for TraceAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace processing aborted (abort flag raised)")
    }
}

impl std::error::Error for TraceAborted {}

/// Converts cleaned SWF records into simulator [`Job`]s.
///
/// Records without a usable size or runtime are skipped (cleaning normally
/// removes them first). Jobs are re-identified densely in input order, which
/// is also arrival order after cleaning. The user estimate falls back to the
/// actual runtime when the log has none.
///
/// Real logs contain jobs whose recorded runtime *exceeds* the user
/// estimate (runs that overran and were killed at the requested limit, with
/// teardown time logged on top). EASY's reservation bookkeeping treats the
/// estimate as binding, so such runtimes are clamped down to the estimate —
/// kill-at-request semantics, mirroring what the batch system actually did.
/// The engine applies the same clamp defensively for directly constructed
/// jobs.
pub fn records_to_jobs(records: &[SwfRecord]) -> Vec<Job> {
    // The error arm is unreachable: without an abort flag the poll can
    // never trip. Defaulting keeps this signature infallible without
    // introducing a panic path.
    records_to_jobs_with_abort(records, None).unwrap_or_default()
}

/// As [`records_to_jobs`], polling `abort` every few thousand records: a
/// raised flag stops the conversion promptly instead of walking the rest
/// of a multi-million-record trace.
pub fn records_to_jobs_with_abort(
    records: &[SwfRecord],
    abort: Option<&AtomicBool>,
) -> Result<Vec<Job>, TraceAborted> {
    let raised = |i: usize| {
        i.is_multiple_of(ABORT_POLL_RECORDS)
            && abort.is_some_and(|flag| flag.load(Ordering::SeqCst))
    };
    let mut jobs = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        if raised(i) {
            return Err(TraceAborted);
        }
        let (Some(procs), Some(req)) = (r.effective_procs(), r.effective_req_time()) else {
            continue;
        };
        if r.run_time <= 0 || r.submit < 0 {
            continue;
        }
        let runtime = (r.run_time as u64).min(req);
        jobs.push(Job::new(
            jobs.len() as u32,
            Time(r.submit as u64),
            procs,
            runtime,
            req,
        ));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_valid_records() {
        let records = vec![
            SwfRecord::simple(10, 0, 3600, 4, 7200),
            SwfRecord::simple(11, 60, 100, 1, 600),
        ];
        let jobs = records_to_jobs(&records);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id.0, 0, "ids re-densified");
        assert_eq!(jobs[0].cpus, 4);
        assert_eq!(jobs[0].runtime, 3600);
        assert_eq!(jobs[0].requested, 7200);
        assert_eq!(jobs[1].arrival, Time(60));
    }

    #[test]
    fn skips_unusable_records() {
        let mut bad_size = SwfRecord::simple(1, 0, 100, -1, 100);
        bad_size.req_procs = -1;
        let records = vec![
            bad_size,
            SwfRecord::simple(2, 0, -1, 4, 100), // no runtime
            SwfRecord::simple(3, 0, 100, 4, 100),
        ];
        let jobs = records_to_jobs(&records);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].runtime, 100);
    }

    #[test]
    fn overrunning_record_killed_at_request() {
        // Recorded runtime 500 s against a 100 s estimate: the job was
        // killed at its requested limit, so the simulator runs it for 100 s.
        let mut r = SwfRecord::simple(1, 0, 500, 2, 100);
        r.req_time = 100; // shorter than actual runtime
        let jobs = records_to_jobs(&[r]);
        assert_eq!(jobs[0].runtime, 100, "runtime clamps down to the estimate");
        assert_eq!(jobs[0].requested, 100);
        assert!(jobs[0].estimate_exact());
    }

    #[test]
    fn raised_abort_flag_stops_the_conversion() {
        let records = vec![SwfRecord::simple(1, 0, 100, 4, 100)];
        let flag = AtomicBool::new(true);
        let err = records_to_jobs_with_abort(&records, Some(&flag)).unwrap_err();
        assert_eq!(err, TraceAborted);
        assert!(err.to_string().contains("aborted"));
    }

    #[test]
    fn unraised_abort_flag_changes_nothing() {
        let records = vec![
            SwfRecord::simple(1, 0, 100, 4, 100),
            SwfRecord::simple(2, 60, 50, 1, 50),
        ];
        let flag = AtomicBool::new(false);
        let with = records_to_jobs_with_abort(&records, Some(&flag)).unwrap();
        assert_eq!(with, records_to_jobs(&records));
    }
}
