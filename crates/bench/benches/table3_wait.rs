//! Bench: Table 3 — the five wait-time configurations.
//!
//! Measures each configuration column of Table 3 separately on SDSC-Blue:
//! original no-DVFS, original DVFS at WQ ∈ {0, NO}, and +50 % DVFS at the
//! same settings.

use bsld_bench::{run_baseline, run_policy, workload, BENCH_JOBS};
use bsld_core::{PowerAwareConfig, WqThreshold};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    let w = workload("SDSCBlue", BENCH_JOBS);

    g.bench_function("orig_no_dvfs", |b| {
        b.iter(|| black_box(run_baseline(black_box(&w)).avg_wait_secs))
    });
    for (wq, pct, label) in [
        (WqThreshold::Limit(0), 0u32, "orig_wq0"),
        (WqThreshold::NoLimit, 0, "orig_wqno"),
        (WqThreshold::Limit(0), 50, "inc50_wq0"),
        (WqThreshold::NoLimit, 50, "inc50_wqno"),
    ] {
        let cfg = PowerAwareConfig {
            bsld_threshold: 2.0,
            wq_threshold: wq,
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(run_policy(black_box(&w), &cfg, pct).avg_wait_secs))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
