//! Bench: power-capped runs — the ledger/sleep/cap hook's overhead and
//! the capped-scheduling kernel itself.
//!
//! Three configurations on the same workload isolate the costs: observe
//! only (ledger on the baseline schedule), sleep states on top, and a
//! hard cap with DVFS (the cap-sweep experiment's cell kernel). Run with
//! `cargo bench -p bsld-bench --bench powercap_sweep`.

use bsld_bench::{workload, BENCH_JOBS};
use bsld_core::{PowerAwareConfig, PowerCapConfig, Simulator, WqThreshold};
use bsld_powercap::SleepConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("powercap");
    g.sample_size(10);
    let w = workload("SDSCBlue", BENCH_JOBS);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);

    let cases: [(&str, PowerCapConfig); 3] = [
        ("observe_only", PowerCapConfig::observe_only()),
        (
            "sleep_states",
            PowerCapConfig::observe_only().with_sleep(SleepConfig::paper_default()),
        ),
        (
            "hard_cap_dvfs",
            PowerCapConfig::hard(0.6)
                .with_sleep(SleepConfig::paper_default())
                .with_policy(PowerAwareConfig {
                    bsld_threshold: 2.0,
                    wq_threshold: WqThreshold::NoLimit,
                }),
        ),
    ];
    for (name, cfg) in cases {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = sim.run_power_capped(black_box(&w.jobs), &cfg).unwrap();
                black_box((r.power.energy, r.run.metrics.avg_bsld))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
