//! Bench: Table 1 — the no-DVFS EASY baseline per workload.
//!
//! Measures the full simulate-and-summarise kernel for each of the five
//! calibrated workloads (reduced job count). Run with `cargo bench -p
//! bsld-bench --bench table1_baseline`.

use bsld_bench::{run_baseline, workload, BENCH_JOBS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_baseline");
    g.sample_size(10);
    for name in ["CTC", "SDSC", "SDSCBlue", "LLNLThunder", "LLNLAtlas"] {
        let w = workload(name, BENCH_JOBS);
        g.bench_function(name, |b| {
            b.iter(|| {
                let m = run_baseline(black_box(&w));
                black_box(m.avg_bsld)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
