//! Bench: the beyond-paper ablation studies (DESIGN.md §6) — dynamic
//! boost, per-job β, FCFS substrate and gear-set granularity.

use bsld_bench::bench_opts;
use bsld_core::experiments::ablation;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let opts = bench_opts();
    g.bench_function("boost", |b| {
        b.iter(|| black_box(ablation::boost(black_box(&opts)).rows.len()))
    });
    g.bench_function("beta", |b| {
        b.iter(|| black_box(ablation::beta(black_box(&opts)).rows.len()))
    });
    g.bench_function("fcfs", |b| {
        b.iter(|| black_box(ablation::fcfs(black_box(&opts)).rows.len()))
    });
    g.bench_function("gears", |b| {
        b.iter(|| black_box(ablation::gears(black_box(&opts)).rows.len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
