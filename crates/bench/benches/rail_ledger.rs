//! Bench: the per-rail power ledger.
//!
//! Drives a scripted start/finish/gear-change event walk through a
//! [`PowerLedger`] built three ways — the default single CPU rail, the
//! three-rail CPU/memory/interconnect split, and the split priced by the
//! cubic model — isolating what per-rail attribution costs on top of the
//! aggregate bookkeeping. A fourth case runs the full observed simulation
//! with the three-rail machine so the rail overhead is also measured in
//! situ. Run with `cargo bench -p bsld-bench --bench rail_ledger`.

use bsld_bench::{workload, BENCH_JOBS};
use bsld_cluster::GearSet;
use bsld_core::{PowerCapConfig, Simulator};
use bsld_model::GearId;
use bsld_power::{Constant, Cubic, Linear, PaperDvfs, PowerModel, Rail, RailKind, RailSet};
use bsld_powercap::PowerLedger;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const CPUS: u32 = 256;
const EVENTS: usize = 40_000;

/// A deterministic event script: interleaved starts and finishes across
/// gears, the occasional in-flight gear change.
fn script() -> Vec<(u8, u8, u32, u64)> {
    (0..EVENTS)
        .map(|i| {
            let op = (i % 7 < 3) as u8 + (i % 7 == 6) as u8 * 2; // starts, finishes, changes
            let gear = (i % 5) as u8;
            let cpus = 1 + (i % 8) as u32;
            let dt = 1 + (i % 13) as u64;
            (op, gear, cpus, dt)
        })
        .collect()
}

fn walk(ledger: &mut PowerLedger, gears: &GearSet, script: &[(u8, u8, u32, u64)]) -> f64 {
    let mut t = 0u64;
    let mut open: Vec<(u32, GearId)> = Vec::new();
    for &(op, gear, cpus, dt) in script {
        t += dt;
        let g = GearId(gear % gears.len() as u8);
        match op {
            0 if ledger.busy() + cpus <= ledger.total_cpus() => {
                ledger.start(t, cpus, g);
                open.push((cpus, g));
            }
            1 | 0 => {
                if let Some((c, og)) = open.pop() {
                    ledger.finish(t, c, og);
                }
            }
            _ => {
                if let Some((c, og)) = open.last().copied() {
                    ledger.gear_change(t, c, og, g);
                    open.last_mut().unwrap().1 = g;
                }
            }
        }
    }
    ledger.advance(t + 1);
    ledger.energy()
}

fn three_rail(cpu: Box<dyn PowerModel>) -> RailSet {
    let gs = cpu.gears().clone();
    let paper = PaperDvfs::paper(gs.clone());
    let idle = paper.p_idle();
    let full = paper.p_active(gs.top());
    RailSet::new(vec![
        Rail::new(RailKind::Cpu, cpu),
        Rail::new(
            RailKind::Memory,
            Box::new(Linear::new(gs.clone(), 0.30 * idle, 0.30 * full)),
        ),
        Rail::new(
            RailKind::Interconnect,
            Box::new(Constant::new(gs.clone(), 0.15 * full)),
        ),
    ])
    .expect("static three-rail layout is valid")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rail_ledger");
    g.sample_size(20);
    let gears = GearSet::paper();
    let events = script();

    let single = RailSet::cpu(Box::new(PaperDvfs::paper(gears.clone())));
    let split = three_rail(Box::new(PaperDvfs::paper(gears.clone())));
    let paper = PaperDvfs::paper(gears.clone());
    let cubic = three_rail(Box::new(Cubic::new(
        gears.clone(),
        paper.p_idle(),
        paper.p_active(gears.top()),
    )));

    let cases: [(&str, &RailSet); 3] = [
        ("walk_single_rail", &single),
        ("walk_three_rails", &split),
        ("walk_three_rails_cubic", &cubic),
    ];
    for (name, rails) in cases {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut ledger = PowerLedger::with_rails(black_box(rails), CPUS);
                black_box(walk(&mut ledger, &gears, &events))
            })
        });
    }

    // The in-situ cost: a full observed run on the three-rail machine.
    let w = workload("SDSCBlue", BENCH_JOBS);
    let mut sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    sim.power = three_rail(Box::new(PaperDvfs::paper(gears.clone())));
    let cfg = PowerCapConfig::observe_only();
    g.bench_function("observe_three_rails", |b| {
        b.iter(|| {
            let r = sim.run_power_capped(black_box(&w.jobs), &cfg).unwrap();
            black_box((r.power.energy, r.power.rails.len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
