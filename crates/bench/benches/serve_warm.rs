//! Bench: warm vs cold query latency in the scheduling-as-a-service path.
//!
//! Measures [`ServerState::run_query`] — the daemon's whole-request body,
//! minus the socket — at its three temperatures:
//!
//! * `cold_full_query` — a fresh state per iteration: parse the spec,
//!   generate the workload, simulate, render (what a one-shot CLI run
//!   pays);
//! * `warm_workload_cache` — a resident state, but a never-seen-before
//!   threshold override per iteration: the generated workload is reused,
//!   only the cells simulate;
//! * `warm_result_cache` — the steady state of a repeated what-if query:
//!   every cell hits the content-hash result cache, only the report
//!   renders.
//!
//! Run with `cargo bench -p bsld-bench --bench serve_warm`; medians feed
//! `BENCH_serve.json` and the README latency table.

use bsld_serve::{Overrides, ServerState, StateConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::Cell;
use std::hint::black_box;

/// One cell on a mid-size CTC-like trace — big enough that simulation
/// dominates, small enough for the bench budget. No sweep axis: a sweep
/// on a knob would overwrite that knob's override (file wins), defeating
/// the never-cached-threshold trick below.
const SCN: &str = "scenario = bench\n\
                   workload = synthetic\n\
                   profile = ctc\n\
                   jobs = 1000\n\
                   seed = 2010\n\
                   policy = bsld:2/NO\n";

fn state() -> ServerState {
    ServerState::new(StateConfig {
        threads: 1,
        ..StateConfig::default()
    })
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_warm");
    g.sample_size(10);

    g.bench_function("cold_full_query", |b| {
        b.iter(|| {
            let fresh = state();
            let reply = fresh
                .run_query(black_box(SCN), &Overrides::default())
                .unwrap();
            assert_eq!(reply.cached, 0);
            black_box(reply.table.len())
        })
    });

    // A resident state whose workload cache is warm but whose result cache
    // never hits: every iteration asks a threshold nobody asked before.
    let resident = state();
    resident.run_query(SCN, &Overrides::default()).unwrap();
    let n = Cell::new(0u64);
    g.bench_function("warm_workload_cache", |b| {
        b.iter(|| {
            n.set(n.get() + 1);
            let ov = Overrides {
                // Unique per iteration, numerically indistinguishable work.
                bsld_th: Some(2.0 + n.get() as f64 * 1e-9),
                ..Overrides::default()
            };
            let reply = resident.run_query(black_box(SCN), &ov).unwrap();
            assert_eq!(reply.cached, 0);
            black_box(reply.table.len())
        })
    });

    // The steady state: the exact query again — all cells cached.
    let warm = state();
    warm.run_query(SCN, &Overrides::default()).unwrap();
    g.bench_function("warm_result_cache", |b| {
        b.iter(|| {
            let reply = warm
                .run_query(black_box(SCN), &Overrides::default())
                .unwrap();
            assert_eq!(reply.cached, 1);
            black_box(reply.table.len())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
