//! Observability overhead: the disabled trace path must be free.
//!
//! * `obs_sim/*_2k` — one 2 000-job SDSC-Blue simulation with no sink
//!   (the `None` fast path), a [`bsld_obs::NullSink`] (the cost of the
//!   emission seam itself) and a [`bsld_obs::BufferSink`] (full capture);
//! * `obs_replay/streaming_100k_untraced` — the replay suite's cold-load
//!   gate re-measured in the obs-wired workspace, tracing disabled: the
//!   number to hold within 2 % of `BENCH_replay.json`'s
//!   `replay_parse/streaming_100k`;
//! * `obs_render/chrome_trace_2k_jobs` — rendering one captured run as a
//!   Chrome-trace JSON string.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Arc;

use bsld_core::scenario::{ProfileName, Scenario, WorkloadSpec};
use bsld_obs::{render_chrome_trace, BufferSink, NullSink, TraceSink};
use bsld_swf::generate_swf;

/// Writes the deterministic synthetic trace `gen-swf` would produce.
fn gen_trace(dir: &std::path::Path, name: &str, jobs: u64, seed: u64) -> PathBuf {
    let path = dir.join(name);
    let file = std::fs::File::create(&path).expect("create trace");
    let mut w = std::io::BufWriter::new(file);
    generate_swf(&mut w, jobs, seed, 1024).expect("write trace");
    std::io::Write::flush(&mut w).expect("flush trace");
    path
}

fn bench_obs(c: &mut Criterion) {
    let sc = Scenario::synthetic("obs-bench", ProfileName::SdscBlue, 2000, 2010);

    let mut g = c.benchmark_group("obs_sim");
    g.sample_size(10);
    g.bench_function("untraced_2k", |b| {
        b.iter(|| sc.run().expect("run").run.metrics.jobs)
    });
    g.bench_function("null_sink_2k", |b| {
        b.iter(|| {
            let sink: Arc<dyn TraceSink> = Arc::new(NullSink);
            sc.run_with_sink(sink).expect("run").run.metrics.jobs
        })
    });
    g.bench_function("buffer_sink_2k", |b| {
        b.iter(|| {
            let sink = BufferSink::shared();
            sc.run_with_sink(sink).expect("run").run.metrics.jobs
        })
    });
    g.finish();

    // The regression gate against BENCH_replay.json: identical workload,
    // identical code path, tracing disabled.
    let dir = std::env::temp_dir().join(format!("bsld-bench-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let trace_100k = gen_trace(&dir, "obs_replay_100k.swf", 100_000, 2010);
    let spec = WorkloadSpec::Swf {
        path: trace_100k.clone(),
        clean: true,
    };
    let mut g = c.benchmark_group("obs_replay");
    g.sample_size(10);
    g.bench_function("streaming_100k_untraced", |b| {
        b.iter(|| spec.build().expect("build").jobs.len())
    });
    g.finish();

    // Render throughput on one real captured run.
    let sink = BufferSink::shared();
    sc.run_with_sink(sink.clone()).expect("run");
    let cells = vec![("obs-bench".to_string(), sink.take())];
    let mut g = c.benchmark_group("obs_render");
    g.sample_size(10);
    g.bench_function("chrome_trace_2k_jobs", |b| {
        b.iter(|| render_chrome_trace(&cells).len())
    });
    g.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
