//! Scheduling-pass throughput: the incremental engine vs the full
//! re-scheduling oracle (`EngineConfig::incremental = false`).
//!
//! Two workload shapes, both at 10 000 jobs:
//!
//! * `synthetic` — a near-saturated stream on a 512-cpu machine (bounded
//!   deep queue, ~100 concurrently running jobs), the regime the paper's
//!   grid/enlarged sweeps spend most of their time in;
//! * `swf_replay` — the same shape pushed through the full SWF pipeline
//!   (write → parse → clean → convert), exercising the trace path.
//!
//! Besides the timing comparison, the harness asserts the acceptance gate:
//! bit-identical outcomes and at least 2x fewer full profile rebuilds
//! (in practice the incremental engine rebuilds a handful of times per
//! run; the counters are printed).

use criterion::{criterion_group, criterion_main, Criterion};

use bsld_core::Simulator;
use bsld_model::Job;
use bsld_simkernel::Time;
use bsld_swf::{clean_trace, parse_swf, write_swf, CleanConfig, SwfHeader, SwfRecord, SwfTrace};
use bsld_workload::Workload;

const JOBS: u32 = 10_000;
const CPUS: u32 = 512;

/// Near-saturated synthetic stream: interarrival slightly under the
/// service rate of a 512-cpu machine, mixed sizes, overestimated requests.
fn synthetic_jobs(n: u32) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let arrival = i as u64 * 10;
            let cpus = 1 + (i * 7) % 16;
            let runtime = 300 + (i as u64 * 41) % 900;
            let requested = runtime + 100 + (i as u64 * 17) % 1200;
            Job::new(i, Time(arrival), cpus, runtime, requested)
        })
        .collect()
}

/// The same stream rebuilt through the full SWF pipeline.
fn swf_replay_jobs(n: u32) -> Vec<Job> {
    let records: Vec<SwfRecord> = synthetic_jobs(n)
        .iter()
        .map(|j| {
            SwfRecord::simple(
                j.id.0 as i64 + 1,
                j.arrival.as_secs() as i64,
                j.runtime as i64,
                j.cpus as i64,
                j.requested as i64,
            )
        })
        .collect();
    let trace = SwfTrace {
        header: SwfHeader {
            max_procs: Some(CPUS),
            ..Default::default()
        },
        records,
    };
    let mut parsed = parse_swf(&write_swf(&trace)).expect("round-trip");
    clean_trace(
        &mut parsed,
        &CleanConfig {
            // Keep the stream intact: this is a replay, not a cleaning
            // study (the synthetic burst pattern trips flurry filters).
            flurry_max_jobs: usize::MAX,
            ..CleanConfig::default()
        },
    );
    Workload::from_swf("pass-throughput", &parsed).jobs
}

/// One-time acceptance gate + counter report for a workload.
fn verify(name: &str, jobs: &[Job]) {
    let sim = Simulator::paper_default(name, CPUS);
    let incr = sim.run_baseline(jobs).expect("fits");
    let full = sim
        .clone()
        .with_full_rescan()
        .run_baseline(jobs)
        .expect("fits");
    assert_eq!(
        incr.outcomes, full.outcomes,
        "{name}: incremental outcomes diverged from the full re-scan oracle"
    );
    let (i, f) = (incr.pass_stats, full.pass_stats);
    println!(
        "  {name}: rebuilds {} -> {} ({}x fewer), passes {} -> {} ({} skipped)",
        f.profile_rebuilds,
        i.profile_rebuilds,
        f.profile_rebuilds / i.profile_rebuilds.max(1),
        f.passes,
        i.passes,
        i.passes_skipped,
    );
    assert!(
        2 * i.profile_rebuilds <= f.profile_rebuilds,
        "{name}: expected >= 2x fewer profile rebuilds (incremental {} vs full {})",
        i.profile_rebuilds,
        f.profile_rebuilds
    );
}

fn bench_pass_throughput(c: &mut Criterion) {
    let synthetic = synthetic_jobs(JOBS);
    let replay = swf_replay_jobs(JOBS);
    verify("synthetic_10k", &synthetic);
    verify("swf_replay_10k", &replay);

    let mut g = c.benchmark_group("pass_throughput");
    g.sample_size(10);
    for (name, jobs) in [("synthetic_10k", &synthetic), ("swf_replay_10k", &replay)] {
        let incr = Simulator::paper_default(name, CPUS);
        let full = incr.clone().with_full_rescan();
        g.bench_function(format!("{name}/incremental"), |b| {
            b.iter(|| incr.run_baseline(jobs).expect("fits").metrics)
        });
        g.bench_function(format!("{name}/full_rescan"), |b| {
            b.iter(|| full.run_baseline(jobs).expect("fits").metrics)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pass_throughput);
criterion_main!(benches);
