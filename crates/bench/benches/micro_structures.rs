//! Microbenchmarks of the simulator's hot data structures: the
//! availability profile (allocation search and commitment), the First Fit
//! processor pool, the event queue, and workload generation.
//!
//! These are the kernels every experiment cell spends its time in; keeping
//! them measured guards the experiment turnaround time (a full 5 000-job
//! cell must stay in the low milliseconds).

use bsld_cluster::{ProcessorPool, Profile, ProfileBuilder};
use bsld_simkernel::{EventQueue, Time};
use bsld_workload::profiles::TraceProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn profile_with_steps(n: usize) -> Profile {
    let total = 500 + 9 * n as u32;
    let mut b = ProfileBuilder::new(Time(0), total, 500);
    for i in 0..n {
        b.release(Time(100 + 37 * i as u64), 9);
    }
    b.build()
}

fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile");
    for steps in [16usize, 256, 2048] {
        let p = profile_with_steps(steps);
        let want = p.total() * 9 / 10; // forces a deep scan of the steps
        g.bench_function(format!("earliest_fit/{steps}_steps"), |b| {
            b.iter(|| black_box(p.earliest_fit(black_box(want), 10_000, Time(0))))
        });
        g.bench_function(format!("commit/{steps}_steps"), |b| {
            b.iter(|| {
                let mut q = p.clone();
                q.commit(Time(5_000), Time(50_000), 100).unwrap();
                black_box(q.available_at(Time(10_000)))
            })
        });
        g.bench_function(format!("min_available/{steps}_steps"), |b| {
            b.iter(|| black_box(p.min_available(Time(0), u64::MAX / 2)))
        });
    }
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool");
    for cpus in [430u32, 9_216] {
        g.bench_function(format!("first_fit_cycle/{cpus}"), |b| {
            b.iter(|| {
                let mut pool = ProcessorPool::new(cpus);
                let a = pool.allocate_first_fit(cpus / 3).unwrap();
                let bset = pool.allocate_first_fit(cpus / 3).unwrap();
                pool.release(&a);
                let cset = pool.allocate_first_fit(cpus / 2).unwrap();
                pool.release(&bset);
                pool.release(&cset);
                black_box(pool.free_count())
            })
        });
    }
    g.finish();
}

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(Time(i.wrapping_mul(2_654_435_761) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_generation");
    g.sample_size(20);
    for (name, profile) in [
        ("CTC", TraceProfile::ctc()),
        ("LLNLAtlas", TraceProfile::llnl_atlas()),
    ] {
        g.bench_function(format!("generate_5000/{name}"), |b| {
            b.iter(|| black_box(profile.generate(black_box(2010), 5_000).jobs.len()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_profile,
    bench_pool,
    bench_events,
    bench_generation
);
criterion_main!(benches);
