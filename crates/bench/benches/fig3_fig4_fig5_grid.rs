//! Bench: Figures 3, 4, 5 — the original-size parameter grid.
//!
//! Two granularities:
//! * `cell/*` — a single `(workload, BSLDth, WQth)` policy run, the unit of
//!   the sweep (figure-agnostic: all three figures read the same cells);
//! * `full_grid` — the complete 5×12-cell sweep plus baselines, exactly
//!   the code `bsld-repro fig3|fig4|fig5` executes.

use bsld_bench::{bench_opts, run_policy, workload, BENCH_JOBS};
use bsld_core::experiments::grid;
use bsld_core::{PowerAwareConfig, WqThreshold};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_fig4_fig5");
    g.sample_size(10);

    // Representative cells: the paper's most conservative and most
    // aggressive parameter pairs on a mid-load and the saturated workload.
    for (wl, bt, wq, label) in [
        (
            "SDSCBlue",
            1.5,
            WqThreshold::Limit(0),
            "cell/SDSCBlue_1.5_0",
        ),
        ("SDSCBlue", 3.0, WqThreshold::NoLimit, "cell/SDSCBlue_3_NO"),
        ("SDSC", 2.0, WqThreshold::Limit(16), "cell/SDSC_2_16"),
        (
            "LLNLThunder",
            2.0,
            WqThreshold::NoLimit,
            "cell/LLNLThunder_2_NO",
        ),
    ] {
        let w = workload(wl, BENCH_JOBS);
        let cfg = PowerAwareConfig {
            bsld_threshold: bt,
            wq_threshold: wq,
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                let m = run_policy(black_box(&w), &cfg, 0);
                black_box((m.reduced_jobs, m.avg_bsld, m.energy.computational))
            })
        });
    }

    let opts = bench_opts();
    g.bench_function("full_grid", |b| {
        b.iter(|| {
            let grid = grid::run(black_box(&opts));
            black_box(grid.cells.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
