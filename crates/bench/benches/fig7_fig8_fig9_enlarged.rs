//! Bench: Figures 7, 8, 9 — the enlarged-systems sweep.
//!
//! `cell/*` measures single enlarged runs (the sweep unit); `full_sweep`
//! is the complete 5-workload × 7-size × 2-WQ study behind all three
//! figures and Table 3.

use bsld_bench::{bench_opts, run_policy, workload, BENCH_JOBS};
use bsld_core::experiments::enlarged;
use bsld_core::{PowerAwareConfig, WqThreshold};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_fig8_fig9");
    g.sample_size(10);

    for (pct, label) in [
        (20u32, "cell/SDSCBlue_+20%_WQ0"),
        (125, "cell/SDSCBlue_+125%_WQ0"),
    ] {
        let w = workload("SDSCBlue", BENCH_JOBS);
        let cfg = PowerAwareConfig {
            bsld_threshold: 2.0,
            wq_threshold: WqThreshold::Limit(0),
        };
        g.bench_function(label, |b| {
            b.iter(|| {
                let m = run_policy(black_box(&w), &cfg, pct);
                black_box((m.avg_bsld, m.energy.with_idle))
            })
        });
    }

    let opts = bench_opts();
    g.bench_function("full_sweep", |b| {
        b.iter(|| {
            let s = enlarged::run(black_box(&opts));
            black_box(s.cells.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
