//! Million-job streaming replay: trace → workload load-path baselines.
//!
//! Benchmarks the data path reworked for streaming — `SwfStream` feeding
//! `clean_swf_stream` feeding `Workload` — against the legacy in-memory
//! path (`read_to_string` → `parse_swf` → `clean_trace` → `from_swf`),
//! plus the serve daemon's warm workload cache on top:
//!
//! * `replay_parse/*_100k` — full cold load (file → cleaned `Workload`) of
//!   a 100 000-job synthetic trace, both paths; bit-identity is asserted
//!   before timing;
//! * `replay_scale/streaming_1m` — the same cold load at 1 000 000 jobs
//!   (the acceptance gate: completes in seconds, peak memory bounded by
//!   surviving jobs, not file size);
//! * `replay_warm/warm_cache_100k` — the serve daemon's workload fetch
//!   after a pin: what a query pays once the trace is resident.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;

use bsld_core::scenario::WorkloadSpec;
use bsld_serve::{ServerState, StateConfig};
use bsld_swf::generate_swf;

/// Writes the deterministic synthetic trace `gen-swf` would produce.
fn gen_trace(dir: &std::path::Path, name: &str, jobs: u64, seed: u64) -> PathBuf {
    let path = dir.join(name);
    let file = std::fs::File::create(&path).expect("create trace");
    let mut w = std::io::BufWriter::new(file);
    generate_swf(&mut w, jobs, seed, 1024).expect("write trace");
    std::io::Write::flush(&mut w).expect("flush trace");
    path
}

fn spec(path: &std::path::Path) -> WorkloadSpec {
    WorkloadSpec::Swf {
        path: path.to_path_buf(),
        clean: true,
    }
}

/// The legacy load path, spelled out from the public API.
fn load_in_memory(path: &std::path::Path) -> bsld_workload::Workload {
    let text = std::fs::read_to_string(path).expect("read");
    let mut trace = bsld_swf::parse_swf(&text).expect("parse");
    bsld_swf::clean_trace(&mut trace, &bsld_swf::CleanConfig::default());
    let name = path.file_stem().and_then(|s| s.to_str()).expect("stem");
    bsld_workload::Workload::from_swf(name, &trace)
}

fn bench_replay(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("bsld-bench-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let trace_100k = gen_trace(&dir, "replay_100k.swf", 100_000, 2010);
    let trace_1m = gen_trace(&dir, "replay_1m.swf", 1_000_000, 2010);

    // Acceptance gates, checked once before any timing: the two paths are
    // bit-identical at 100k, and the 1M streaming replay finishes in
    // seconds.
    let streamed = spec(&trace_100k).build().expect("streaming build");
    let in_memory = load_in_memory(&trace_100k);
    assert_eq!(streamed.cpus, in_memory.cpus, "cpus diverged");
    assert_eq!(
        streamed.jobs.len(),
        in_memory.jobs.len(),
        "job count diverged"
    );
    for (a, b) in streamed.jobs.iter().zip(&in_memory.jobs) {
        assert!(
            a.id == b.id
                && a.arrival == b.arrival
                && a.cpus == b.cpus
                && a.runtime == b.runtime
                && a.requested == b.requested,
            "job {:?} diverged between load paths",
            a.id
        );
    }
    let t0 = std::time::Instant::now();
    let big = spec(&trace_1m).build().expect("1m build");
    let elapsed = t0.elapsed();
    println!(
        "  1M-job streaming replay: {} jobs loaded in {elapsed:.2?}",
        big.jobs.len()
    );
    assert!(
        elapsed.as_secs() < 60,
        "1M-job replay must complete in seconds, took {elapsed:?}"
    );
    drop(big);

    let mut g = c.benchmark_group("replay_parse");
    g.sample_size(10);
    g.bench_function("streaming_100k", |b| {
        b.iter(|| spec(&trace_100k).build().expect("build").jobs.len())
    });
    g.bench_function("in_memory_100k", |b| {
        b.iter(|| load_in_memory(&trace_100k).jobs.len())
    });
    g.finish();

    let mut g = c.benchmark_group("replay_scale");
    g.sample_size(10);
    g.bench_function("streaming_1m", |b| {
        b.iter(|| spec(&trace_1m).build().expect("build").jobs.len())
    });
    g.finish();

    // Warm path: the serve daemon's workload cache after a cache pin.
    let state = ServerState::new(StateConfig {
        threads: 1,
        ..StateConfig::default()
    });
    state
        .pin_swf(trace_100k.to_str().expect("utf-8 path"))
        .expect("pin");
    let scn = format!(
        "scenario = replay\nworkload = swf\nswf_path = {}\nsweep.bsld_th = 1.5 2 3\n",
        trace_100k.display()
    );
    let mut g = c.benchmark_group("replay_warm");
    g.sample_size(10);
    g.bench_function("warm_cache_100k_sweep3", |b| {
        b.iter(|| {
            state
                .run_query(&scn, &Default::default())
                .expect("query")
                .cells
        })
    });
    g.finish();

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
