//! Bench: Figure 6 — the SDSC-Blue wait-time series experiment (baseline
//! and DVFS 2/16 runs plus series extraction).

use bsld_bench::bench_opts;
use bsld_core::experiments::fig6;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    let opts = bench_opts();
    g.bench_function("wait_series_pair", |b| {
        b.iter(|| {
            let f = fig6::run(black_box(&opts));
            black_box(f.mean_waits())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
