//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one table or figure of Etinski et al.
//! 2010 at a reduced job count (the code path is identical to the full
//! `bsld-repro` run; only `jobs` differs, so criterion measures the real
//! experiment kernels without taking minutes per sample).

#![forbid(unsafe_code)]

use bsld_core::experiments::ExpOptions;
use bsld_core::{PowerAwareConfig, Simulator};
use bsld_metrics::RunMetrics;
use bsld_workload::profiles::TraceProfile;
use bsld_workload::Workload;

/// The standard reduced scale for benches.
pub const BENCH_JOBS: usize = 400;

/// Reduced-scale experiment options (no CSV output).
pub fn bench_opts() -> ExpOptions {
    ExpOptions {
        threads: 1,
        ..ExpOptions::quick(BENCH_JOBS)
    }
}

/// Generates the benchmark workload for a named profile.
pub fn workload(name: &str, jobs: usize) -> Workload {
    let profile = match name {
        "CTC" => TraceProfile::ctc(),
        "SDSC" => TraceProfile::sdsc(),
        "SDSCBlue" => TraceProfile::sdsc_blue(),
        "LLNLThunder" => TraceProfile::llnl_thunder(),
        "LLNLAtlas" => TraceProfile::llnl_atlas(),
        other => panic!("unknown workload {other}"),
    };
    profile.generate(2010, jobs)
}

/// Runs the no-DVFS baseline on a workload.
pub fn run_baseline(w: &Workload) -> RunMetrics {
    Simulator::paper_default(&w.cluster_name, w.cpus)
        .run_baseline(&w.jobs)
        .expect("fits")
        .metrics
}

/// Runs the power-aware policy on a workload.
pub fn run_policy(w: &Workload, cfg: &PowerAwareConfig, enlarged_pct: u32) -> RunMetrics {
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let sim = if enlarged_pct > 0 {
        sim.enlarged(enlarged_pct)
    } else {
        sim
    };
    sim.run_power_aware(&w.jobs, cfg).expect("fits").metrics
}
