//! Gear identifiers.
//!
//! A [`GearId`] is an index into a cluster's DVFS gear set, ordered from the
//! lowest frequency (index 0) to the highest. The gear table itself (the
//! frequency/voltage pairs) lives in `bsld-cluster`; the bare index lives
//! here so that job outcomes can record their assigned gear without pulling
//! in the cluster model.

/// Index into a DVFS gear set; `GearId(0)` is the lowest frequency and
/// larger indices are faster gears.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GearId(pub u8);

impl GearId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GearId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_index() {
        assert!(GearId(0) < GearId(1));
        assert!(GearId(5) > GearId(4));
        assert_eq!(GearId(3).index(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(GearId(2).to_string(), "g2");
    }
}
