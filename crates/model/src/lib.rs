//! Domain model shared by the BSLD reproduction crates.
//!
//! * [`Job`] — a rigid parallel job: arrival time, processor count, actual
//!   runtime and user-requested runtime (both expressed at the top CPU
//!   frequency), and a per-job β frequency-sensitivity coefficient;
//! * [`JobOutcome`] — what the simulator records once a job completes:
//!   start/finish times, the assigned DVFS gear and the executed phases;
//! * [`bsld`] — the Bounded Slowdown metric (Eq. 1/2/6 of Etinski et al.
//!   2010) with the paper's 600 s very-short-job threshold;
//! * [`GearId`] — an index into a DVFS gear set (the gear table itself lives
//!   in `bsld-cluster`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod bsld;
pub mod gear_id;
pub mod job;
pub mod outcome;

pub use bsld::{bsld_observed, bsld_predicted, BSLD_SHORT_JOB_THRESHOLD_SECS};
pub use gear_id::GearId;
pub use job::{Job, JobId};
pub use outcome::{JobOutcome, Phase};
