//! The Bounded Slowdown (BSLD) metric.
//!
//! BSLD is the paper's measure of user-perceived performance. For a completed
//! job (Eq. 1 and Eq. 6 of the paper):
//!
//! ```text
//! BSLD = max( (WaitTime + PenalizedRunTime) / max(Th, RunTime), 1 )
//! ```
//!
//! where `PenalizedRunTime` is the runtime at the gear the job actually used
//! and `RunTime` in the denominator is the **nominal** (top-frequency)
//! runtime — so dilation from frequency scaling counts fully as slowdown.
//! `Th = 600 s` keeps very short jobs from dominating averages.
//!
//! For a *prediction* at scheduling time (Eq. 2) the user-requested time `RQ`
//! replaces the unknown runtime and the β-model dilation coefficient
//! `Coef(f)` replaces the realised penalty:
//!
//! ```text
//! PredBSLD = max( (WT + RQ·Coef(f)) / max(Th, RQ), 1 )
//! ```

/// The paper's very-short-job threshold `Th` (600 s = 10 min).
pub const BSLD_SHORT_JOB_THRESHOLD_SECS: u64 = 600;

/// Observed BSLD of a completed job (Eq. 6).
///
/// * `wait` — seconds between arrival and start;
/// * `penalized_runtime` — seconds between start and finish (at the executed
///   gear(s));
/// * `nominal_runtime` — runtime at the top frequency (denominator);
/// * `th` — the short-job threshold, normally
///   [`BSLD_SHORT_JOB_THRESHOLD_SECS`].
#[inline]
pub fn bsld_observed(wait: u64, penalized_runtime: u64, nominal_runtime: u64, th: u64) -> f64 {
    // `th == 0` (a sensitivity study disabling the short-job clamp) with a
    // zero runtime would otherwise divide by zero (NaN/inf); one second is
    // the smallest meaningful denominator in whole-second scheduling.
    let denom = th.max(nominal_runtime).max(1) as f64;
    let slowdown = (wait + penalized_runtime) as f64 / denom;
    slowdown.max(1.0)
}

/// Predicted BSLD at scheduling time (Eq. 2).
///
/// * `wait` — wait time implied by the candidate allocation (`start −
///   arrival`);
/// * `requested` — the user runtime estimate `RQ` at top frequency;
/// * `coef` — the β-model dilation coefficient `Coef(f) ≥ 1`;
/// * `th` — the short-job threshold.
#[inline]
pub fn bsld_predicted(wait: u64, requested: u64, coef: f64, th: u64) -> f64 {
    // Same zero-denominator guard as `bsld_observed`.
    let denom = th.max(requested).max(1) as f64;
    let slowdown = (wait as f64 + requested as f64 * coef) / denom;
    slowdown.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_job_clamped_by_threshold() {
        // 60 s job, no wait: (0+60)/600 < 1 → clamped to 1.
        assert_eq!(bsld_observed(0, 60, 60, 600), 1.0);
        // 60 s job, 540 s wait: (540+60)/600 = 1.
        assert_eq!(bsld_observed(540, 60, 60, 600), 1.0);
        // 60 s job, 1140 s wait: (1140+60)/600 = 2.
        assert_eq!(bsld_observed(1140, 60, 60, 600), 2.0);
    }

    #[test]
    fn long_job_uses_own_runtime() {
        // 1200 s job, 1200 s wait: (1200+1200)/1200 = 2.
        assert_eq!(bsld_observed(1200, 1200, 1200, 600), 2.0);
    }

    #[test]
    fn dilation_counts_as_slowdown() {
        // Nominal 1000 s job dilated to 1500 s, no wait:
        // (0+1500)/1000 = 1.5 — the denominator stays nominal.
        assert_eq!(bsld_observed(0, 1500, 1000, 600), 1.5);
    }

    #[test]
    fn never_below_one() {
        assert_eq!(bsld_observed(0, 1, 1, 600), 1.0);
        assert_eq!(bsld_predicted(0, 1, 1.0, 600), 1.0);
    }

    #[test]
    fn zero_threshold_zero_runtime_is_finite() {
        // th = 0 with a zero-length job must not produce NaN or infinity.
        let v = bsld_observed(0, 0, 0, 0);
        assert!(v.is_finite(), "got {v}");
        assert_eq!(v, 1.0);
        let v = bsld_observed(10, 0, 0, 0);
        assert!(v.is_finite());
        assert_eq!(v, 10.0, "denominator clamps to one second");
        let v = bsld_predicted(0, 0, 1.5, 0);
        assert!(v.is_finite());
        assert_eq!(v, 1.0);
        let v = bsld_predicted(5, 0, 1.0, 0);
        assert_eq!(v, 5.0);
    }

    #[test]
    fn zero_threshold_with_real_runtime_unaffected() {
        // The guard must not change any case with a positive denominator.
        assert_eq!(bsld_observed(100, 100, 100, 0), 2.0);
        assert_eq!(bsld_predicted(100, 100, 1.0, 0), 2.0);
    }

    #[test]
    fn predicted_matches_formula() {
        // WT=500, RQ=1000, Coef=1.5: (500+1500)/1000 = 2.
        assert_eq!(bsld_predicted(500, 1000, 1.5, 600), 2.0);
        // Short requested time uses threshold denominator:
        // WT=300, RQ=300, Coef=2: (300+600)/600 = 1.5.
        assert_eq!(bsld_predicted(300, 300, 2.0, 600), 1.5);
    }

    #[test]
    fn predicted_monotone_in_coef_and_wait() {
        let base = bsld_predicted(100, 2000, 1.0, 600);
        assert!(bsld_predicted(100, 2000, 1.2, 600) > base);
        assert!(bsld_predicted(500, 2000, 1.0, 600) > base);
    }
}
