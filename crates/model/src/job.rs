//! Rigid parallel jobs.

use bsld_simkernel::Time;

/// Unique job identifier within one workload (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A rigid parallel job as scheduled by the paper's simulator.
///
/// Both `runtime` and `requested` are expressed **at the top CPU frequency**;
/// running at a reduced gear dilates them by the β model's `Coef(f)` factor
/// (see `bsld-power`).
///
/// Invariants enforced by [`Job::new`]:
/// * `cpus >= 1`;
/// * `runtime >= 1` (zero-length jobs are dropped during trace cleaning);
/// * `requested >= runtime` — backfilling relies on the user estimate being
///   an upper bound. Real logs occasionally violate this (jobs that overrun
///   and are killed); trace cleaning clamps them, mirroring how the EASY
///   reservation bookkeeping treats the estimate as binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Dense identifier (also the arrival order index in a workload).
    pub id: JobId,
    /// Submission time.
    pub arrival: Time,
    /// Number of processors the job needs for its whole lifetime (rigid).
    pub cpus: u32,
    /// Actual runtime at the top frequency, in seconds.
    pub runtime: u64,
    /// User-requested runtime (estimate) at the top frequency, in seconds.
    pub requested: u64,
    /// Per-job frequency-sensitivity coefficient of the β time model.
    /// The paper uses a global β = 0.5; the per-job field supports the
    /// paper's stated future work of job-specific β analysis.
    pub beta: f64,
}

impl Job {
    /// Creates a job, clamping the fields to the documented invariants.
    pub fn new(id: u32, arrival: Time, cpus: u32, runtime: u64, requested: u64) -> Self {
        let runtime = runtime.max(1);
        Job {
            id: JobId(id),
            arrival,
            cpus: cpus.max(1),
            runtime,
            requested: requested.max(runtime),
            beta: 0.5,
        }
    }

    /// Sets a per-job β (builder style).
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "β must lie in [0, 1]");
        self.beta = beta;
        self
    }

    /// Work volume in processor-seconds at the top frequency.
    #[inline]
    pub fn area(&self) -> u64 {
        self.cpus as u64 * self.runtime
    }

    /// Whether the user estimate was exact.
    #[inline]
    pub fn estimate_exact(&self) -> bool {
        self.requested == self.runtime
    }

    /// Overestimation factor `requested / runtime` (≥ 1).
    #[inline]
    pub fn overestimate(&self) -> f64 {
        self.requested as f64 / self.runtime as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_invariants() {
        let j = Job::new(0, Time(10), 0, 0, 0);
        assert_eq!(j.cpus, 1);
        assert_eq!(j.runtime, 1);
        assert_eq!(j.requested, 1);

        let j = Job::new(1, Time(0), 4, 100, 50);
        assert_eq!(j.requested, 100, "requested clamped up to runtime");
    }

    #[test]
    fn area_and_estimate() {
        let j = Job::new(0, Time(0), 8, 3600, 7200);
        assert_eq!(j.area(), 8 * 3600);
        assert!(!j.estimate_exact());
        assert!((j.overestimate() - 2.0).abs() < 1e-12);

        let exact = Job::new(1, Time(0), 1, 60, 60);
        assert!(exact.estimate_exact());
    }

    #[test]
    fn beta_builder() {
        let j = Job::new(0, Time(0), 1, 10, 10).with_beta(0.25);
        assert_eq!(j.beta, 0.25);
    }

    #[test]
    #[should_panic(expected = "β must lie in [0, 1]")]
    fn beta_out_of_range_panics() {
        let _ = Job::new(0, Time(0), 1, 10, 10).with_beta(1.5);
    }

    #[test]
    fn job_id_display_and_index() {
        assert_eq!(JobId(3).to_string(), "j3");
        assert_eq!(JobId(3).index(), 3);
    }
}
