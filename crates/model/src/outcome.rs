//! Completed-job records.

use bsld_simkernel::Time;

use crate::bsld::bsld_observed;
use crate::gear_id::GearId;
use crate::job::JobId;

/// One contiguous stretch of execution at a single gear.
///
/// Without the dynamic-boost extension every job has exactly one phase; with
/// it, a job that is boosted mid-run has two or more.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Gear the job ran at during this phase.
    pub gear: GearId,
    /// Wall-clock seconds spent in this phase (already dilated).
    pub seconds: u64,
}

/// Everything the simulator records about a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's identifier.
    pub id: JobId,
    /// Processors held for the whole execution.
    pub cpus: u32,
    /// Submission time.
    pub arrival: Time,
    /// Execution start time.
    pub start: Time,
    /// Completion time (`start + penalized runtime`).
    pub finish: Time,
    /// Gear assigned at start (the paper assigns one gear per execution).
    pub gear: GearId,
    /// Executed phases; one entry unless the job was boosted mid-run.
    pub phases: Vec<Phase>,
    /// Nominal (top-frequency) runtime, seconds.
    pub nominal_runtime: u64,
    /// User-requested runtime at top frequency, seconds.
    pub requested: u64,
}

impl JobOutcome {
    /// Seconds the job waited between arrival and start.
    #[inline]
    pub fn wait(&self) -> u64 {
        self.start - self.arrival
    }

    /// Wall-clock runtime actually experienced (dilated by DVFS), seconds.
    #[inline]
    pub fn penalized_runtime(&self) -> u64 {
        self.finish - self.start
    }

    /// Observed BSLD (Eq. 6 of the paper) with short-job threshold `th`.
    #[inline]
    pub fn bsld(&self, th: u64) -> f64 {
        bsld_observed(
            self.wait(),
            self.penalized_runtime(),
            self.nominal_runtime,
            th,
        )
    }

    /// Whether the job ran below the given top gear at any point.
    #[inline]
    pub fn was_reduced(&self, top: GearId) -> bool {
        self.phases.iter().any(|p| p.gear < top)
    }

    /// Processor-seconds occupied (dilated runtime × cpus).
    #[inline]
    pub fn area(&self) -> u64 {
        self.cpus as u64 * self.penalized_runtime()
    }

    /// Checks internal consistency; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.start < self.arrival {
            return Err(format!("{}: started before arrival", self.id));
        }
        if self.finish < self.start {
            return Err(format!("{}: finished before start", self.id));
        }
        let phase_sum: u64 = self.phases.iter().map(|p| p.seconds).sum();
        if phase_sum != self.penalized_runtime() {
            return Err(format!(
                "{}: phases sum to {} but penalized runtime is {}",
                self.id,
                phase_sum,
                self.penalized_runtime()
            ));
        }
        if self.phases.is_empty() {
            return Err(format!("{}: no executed phases", self.id));
        }
        if self.phases[0].gear != self.gear {
            return Err(format!(
                "{}: first phase gear differs from assigned gear",
                self.id
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(wait: u64, runtime: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(0),
            cpus: 4,
            arrival: Time(100),
            start: Time(100 + wait),
            finish: Time(100 + wait + runtime),
            gear: GearId(5),
            phases: vec![Phase {
                gear: GearId(5),
                seconds: runtime,
            }],
            nominal_runtime: runtime,
            requested: runtime,
        }
    }

    #[test]
    fn accessors() {
        let o = outcome(50, 1000);
        assert_eq!(o.wait(), 50);
        assert_eq!(o.penalized_runtime(), 1000);
        assert_eq!(o.area(), 4000);
        assert!(!o.was_reduced(GearId(5)));
        assert!(o.validate().is_ok());
    }

    #[test]
    fn bsld_of_outcome() {
        let o = outcome(1000, 1000);
        assert_eq!(o.bsld(600), 2.0);
    }

    #[test]
    fn reduced_detection() {
        let mut o = outcome(0, 1500);
        o.gear = GearId(2);
        o.phases = vec![Phase {
            gear: GearId(2),
            seconds: 1500,
        }];
        assert!(o.was_reduced(GearId(5)));
        assert!(!o.was_reduced(GearId(2)));
    }

    #[test]
    fn validate_rejects_inconsistency() {
        let mut o = outcome(0, 100);
        o.phases[0].seconds = 99;
        assert!(o.validate().is_err());

        let mut o = outcome(0, 100);
        o.start = Time(0); // before arrival at t=100
        assert!(o.validate().is_err());

        let mut o = outcome(0, 100);
        o.phases.clear();
        assert!(o.validate().is_err());

        let mut o = outcome(0, 100);
        o.phases[0].gear = GearId(1);
        assert!(o.validate().is_err());
    }
}
