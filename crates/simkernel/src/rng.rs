//! Deterministic random-number utilities.
//!
//! Every stochastic component in the workspace (arrival processes, runtime
//! distributions, estimate models, ...) draws from its own stream derived
//! from a single experiment seed. Streams are derived with a SplitMix64
//! finaliser over `(seed, stream id)`, so
//!
//! * the same experiment seed always reproduces the same workload, and
//! * adding a new stream (e.g. a new distribution) never perturbs the
//!   existing ones.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finaliser. Maps a 64-bit state to a well-mixed 64-bit output;
/// used to derive independent stream seeds from `(seed, stream id)` pairs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of sub-stream `stream` from the master `seed`.
///
/// Distinct `(seed, stream)` pairs map to distinct (well-mixed) outputs with
/// overwhelming probability, so sub-streams behave as independent RNGs.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(seed) ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Creates the RNG for sub-stream `stream` of master `seed`.
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(seed, stream))
}

/// Well-known stream identifiers, so the derivations are documented in one
/// place rather than scattered as magic numbers.
pub mod streams {
    /// Inter-arrival time process.
    pub const ARRIVALS: u64 = 1;
    /// Job size (processor count) distribution.
    pub const SIZES: u64 = 2;
    /// Job runtime distribution.
    pub const RUNTIMES: u64 = 3;
    /// User runtime-estimate (requested time) model.
    pub const ESTIMATES: u64 = 4;
    /// Per-job β (frequency-sensitivity) distribution.
    pub const BETA: u64 = 5;
    /// Miscellaneous/test stream.
    pub const MISC: u64 = 99;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(7, streams::ARRIVALS);
        let b = derive_seed(7, streams::SIZES);
        let c = derive_seed(8, streams::ARRIVALS);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn stream_rng_reproducible() {
        let mut r1 = stream_rng(123, 1);
        let mut r2 = stream_rng(123, 1);
        let xs: Vec<u64> = (0..16).map(|_| r1.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| r2.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        let mut r1 = stream_rng(123, 1);
        let mut r2 = stream_rng(123, 2);
        let xs: Vec<u64> = (0..16).map(|_| r1.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| r2.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_constants_are_distinct() {
        let ids = [
            streams::ARRIVALS,
            streams::SIZES,
            streams::RUNTIMES,
            streams::ESTIMATES,
            streams::BETA,
            streams::MISC,
        ];
        for (i, a) in ids.iter().enumerate() {
            for b in ids.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
