//! Simulation time.
//!
//! The whole workspace measures time in **whole seconds** held in a [`Time`]
//! newtype. The Standard Workload Format reports arrival, wait and run times
//! in seconds, and the paper's metrics (BSLD with a 600 s threshold, average
//! wait times of thousands of seconds) make sub-second resolution
//! unnecessary. Integer time keeps the event queue total order exact and the
//! simulation bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, in whole seconds since simulation start.
///
/// `Time` is a thin wrapper over `u64` with checked arithmetic in debug
/// builds. Durations are plain `u64` seconds; adding a duration to a `Time`
/// yields a `Time`, and subtracting two `Time`s yields a `u64` duration.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);

    /// The largest representable instant, used as an "infinite horizon"
    /// sentinel in availability profiles.
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs a time from a number of seconds since simulation start.
    #[inline]
    pub const fn seconds(s: u64) -> Self {
        Time(s)
    }

    /// Seconds since simulation start.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Simulated microseconds since simulation start, saturating at
    /// `u64::MAX` — the timestamp unit of the Chrome trace-event format
    /// (`bsld-obs` trace plane).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0.saturating_mul(1_000_000)
    }

    /// Saturating duration from `earlier` to `self` (zero if `earlier` is
    /// actually later).
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// `self + secs`, saturating at [`Time::MAX`].
    #[inline]
    pub fn saturating_add(self, secs: u64) -> Time {
        Time(self.0.saturating_add(secs))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for Time {
    type Output = Time;

    #[inline]
    fn add(self, secs: u64) -> Time {
        debug_assert!(
            self.0.checked_add(secs).is_some(),
            "Time overflow: {} + {}",
            self.0,
            secs
        );
        Time(self.0.wrapping_add(secs))
    }
}

impl AddAssign<u64> for Time {
    #[inline]
    fn add_assign(&mut self, secs: u64) {
        *self = *self + secs;
    }
}

impl Sub<Time> for Time {
    /// Duration in seconds. Panics in debug builds if `rhs` is later than
    /// `self`; use [`Time::saturating_since`] when the ordering is unknown.
    type Output = u64;

    #[inline]
    fn sub(self, rhs: Time) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative duration: {} - {}", self.0, rhs.0);
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Time::seconds(42);
        assert_eq!(t.as_secs(), 42);
        assert_eq!(Time::ZERO.as_secs(), 0);
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time(1) < Time(2));
        assert!(Time(2) <= Time(2));
        assert_eq!(Time(5).min(Time(3)), Time(3));
        assert_eq!(Time(5).max(Time(3)), Time(5));
    }

    #[test]
    fn add_duration() {
        let t = Time(10) + 5;
        assert_eq!(t, Time(15));
        let mut u = Time(1);
        u += 9;
        assert_eq!(u, Time(10));
    }

    #[test]
    fn sub_gives_duration() {
        assert_eq!(Time(15) - Time(10), 5);
        assert_eq!(Time(15) - Time(15), 0);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time(3).saturating_since(Time(10)), 0);
        assert_eq!(Time(10).saturating_since(Time(3)), 7);
        assert_eq!(Time::MAX.saturating_add(1), Time::MAX);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    #[cfg(debug_assertions)]
    fn negative_duration_panics_in_debug() {
        let _ = Time(1) - Time(2);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Time(7)), "7");
        assert_eq!(format!("{:?}", Time(7)), "t=7");
    }
}
