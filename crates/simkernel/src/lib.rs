//! Discrete-event simulation kernel for the BSLD reproduction.
//!
//! This crate provides the building blocks shared by every simulator in the
//! workspace:
//!
//! * [`Time`] — an integer simulation clock (seconds), totally ordered and
//!   overflow-checked in debug builds;
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   with stable FIFO tie-breaking;
//! * [`rng`] — seed-splitting utilities on top of [`rand::rngs::SmallRng`]
//!   so that every stochastic component of an experiment can be given an
//!   independent, reproducible stream;
//! * [`stats`] — online (Welford) statistics, histograms and time-weighted
//!   averages used when summarising simulation runs.
//!
//! The kernel is intentionally independent of the scheduling domain: it knows
//! nothing about jobs, processors or power. See `bsld-sched` for the
//! scheduling engine built on top of it.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod events;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use time::Time;
