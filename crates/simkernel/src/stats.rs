//! Online statistics used when summarising simulation runs.
//!
//! * [`OnlineStats`] — single-pass mean/variance/min/max (Welford's
//!   algorithm), numerically stable for millions of samples;
//! * [`Histogram`] — fixed-bin histogram over a `[lo, hi)` range;
//! * [`TimeWeighted`] — integral of a step function over time, used e.g. for
//!   average queue depth and utilisation.

use crate::time::Time;

/// Single-pass mean / variance / extrema accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Unbiased sample variance (Bessel's correction, `m2 / (n - 1)`;
    /// 0 when fewer than two observations).
    ///
    /// Use this — not [`OnlineStats::variance`] — when the observations
    /// are a *sample* from a larger population, e.g. seed replications of
    /// a sweep cell: the population formula divides by `n` and understates
    /// the spread (and hence any error bar) for small `n`.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation (square root of
    /// [`OnlineStats::sample_variance`]).
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean: `sample_stddev / sqrt(n)` (0 when fewer
    /// than two observations).
    pub fn stderr(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.sample_stddev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the 95 % confidence interval of the mean:
    /// `t_{0.975, n-1} * stderr`, using the Student-t critical value for
    /// small samples (0 when fewer than two observations). The interval is
    /// `mean ± ci95_half`.
    pub fn ci95_half(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            t_critical_95(self.n - 1) * self.stderr()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 97.5 % Student-t critical values for `df` 1..=30; beyond 30
/// degrees of freedom the normal approximation (1.96) is within 3 %.
const T_CRIT_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95 % Student-t critical value for `df` degrees of freedom
/// (tabulated up to 30, normal approximation 1.96 beyond). `df = 0` returns
/// infinity: one observation carries no interval.
pub fn t_critical_95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_CRIT_95[(df - 1) as usize],
        _ => 1.96,
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with under/overflow bins and a
/// dedicated NaN bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            nan: 0,
        }
    }

    /// Records one observation. NaN observations land in a dedicated
    /// bucket ([`Histogram::nan`]) instead of being miscounted: every
    /// range comparison on NaN is false, so the old code fell through and
    /// `NaN as usize` silently incremented bin 0. Infinities are ordered
    /// and keep going to the under/overflow bins.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Counts per bin, excluding under/overflow.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN observations (neither a bin nor an under/overflow).
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Total number of recorded observations, NaN bucket included.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.nan + self.bins.iter().sum::<u64>()
    }

    /// The `[lo, hi)` bounds of bin `idx`.
    pub fn bin_bounds(&self, idx: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * idx as f64, self.lo + w * (idx + 1) as f64)
    }
}

/// Integral of a piecewise-constant function of time.
///
/// Feed it level changes with [`TimeWeighted::set`]; query the time-weighted
/// mean over the observed span with [`TimeWeighted::mean`]. Used for average
/// wait-queue depth and processor utilisation.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: Option<Time>,
    last_t: Time,
    level: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Creates an accumulator; the first `set` call defines the origin.
    pub fn new() -> Self {
        TimeWeighted {
            start: None,
            last_t: Time::ZERO,
            level: 0.0,
            integral: 0.0,
        }
    }

    /// Sets the level to `value` from time `t` onwards.
    ///
    /// Calls must have non-decreasing `t`; a call at the same `t` simply
    /// replaces the level.
    pub fn set(&mut self, t: Time, value: f64) {
        match self.start {
            None => {
                self.start = Some(t);
                self.last_t = t;
                self.level = value;
            }
            Some(_) => {
                debug_assert!(t >= self.last_t, "TimeWeighted::set must be monotone");
                self.integral += self.level * (t.saturating_since(self.last_t)) as f64;
                self.last_t = t;
                self.level = value;
            }
        }
    }

    /// Integral of the level from the origin up to `end`.
    pub fn integral_to(&self, end: Time) -> f64 {
        self.integral + self.level * (end.saturating_since(self.last_t)) as f64
    }

    /// Time-weighted mean level over `[origin, end]`.
    pub fn mean(&self, end: Time) -> f64 {
        match self.start {
            None => 0.0,
            Some(s) => {
                let span = end.saturating_since(s) as f64;
                // audit:allow(N1): span is an integer difference cast to f64; zero is exact
                if span == 0.0 {
                    self.level
                } else {
                    self.integral_to(end) / span
                }
            }
        }
    }
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a **sorted** slice using linear
/// interpolation, or `None` if the slice is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_applies_bessel_correction() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        // Population variance 4.0 over n=8 → m2 = 32; sample divides by 7.
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.sample_stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(s.sample_variance() > s.variance(), "sample > population");
    }

    #[test]
    fn stderr_and_ci_match_hand_computed_small_n() {
        // Three replications: 10, 12, 14. mean 12, sample variance 4,
        // sample stddev 2, stderr 2/sqrt(3), t(df=2) = 4.303.
        let mut s = OnlineStats::new();
        for x in [10.0, 12.0, 14.0] {
            s.push(x);
        }
        let stderr = 2.0 / 3.0f64.sqrt();
        assert!((s.sample_variance() - 4.0).abs() < 1e-12);
        assert!((s.stderr() - stderr).abs() < 1e-12);
        assert!((s.ci95_half() - 4.303 * stderr).abs() < 1e-9);
    }

    #[test]
    fn stderr_degenerate_counts() {
        let mut s = OnlineStats::new();
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.stderr(), 0.0);
        assert_eq!(s.ci95_half(), 0.0);
        s.push(5.0);
        // One observation: no spread estimate, not NaN/inf.
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.stderr(), 0.0);
        assert_eq!(s.ci95_half(), 0.0);
    }

    #[test]
    fn t_critical_values() {
        assert_eq!(t_critical_95(0), f64::INFINITY);
        assert!((t_critical_95(1) - 12.706).abs() < 1e-12);
        assert!((t_critical_95(2) - 4.303).abs() < 1e-12);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-12);
        assert!((t_critical_95(31) - 1.96).abs() < 1e-12);
        assert!((t_critical_95(10_000) - 1.96).abs() < 1e-12);
        // Monotone non-increasing in df.
        for df in 1..40 {
            assert!(t_critical_95(df) >= t_critical_95(df + 1), "df={df}");
        }
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean());
        a.merge(&OnlineStats::new());
        assert_eq!((a.count(), a.mean()), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(0), (0.0, 2.0));
        assert_eq!(h.bin_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn histogram_counts_nan_in_dedicated_bucket() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(f64::NAN);
        h.push(-f64::NAN);
        h.push(1.0);
        h.push(f64::INFINITY);
        h.push(f64::NEG_INFINITY);
        assert_eq!(h.nan(), 2, "NaN must not be miscounted as bin 0");
        assert_eq!(h.bins(), &[1, 0, 0, 0, 0]);
        assert_eq!(h.overflow(), 1, "+inf is an overflow");
        assert_eq!(h.underflow(), 1, "-inf is an underflow");
        assert_eq!(h.total(), 5, "total reports every observation");
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.set(Time(0), 2.0); // level 2 on [0,10)
        tw.set(Time(10), 4.0); // level 4 on [10,20)
        assert!((tw.mean(Time(20)) - 3.0).abs() < 1e-12);
        assert!((tw.integral_to(Time(20)) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_and_instant() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(Time(100)), 0.0);
        let mut tw = TimeWeighted::new();
        tw.set(Time(5), 7.0);
        assert_eq!(tw.mean(Time(5)), 7.0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&xs, 1.0), Some(4.0));
        assert_eq!(quantile_sorted(&xs, 0.5), Some(2.5));
        assert_eq!(quantile_sorted(&[], 0.5), None);
        assert_eq!(quantile_sorted(&[9.0], 0.7), Some(9.0));
    }
}
