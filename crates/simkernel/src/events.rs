//! Deterministic event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders events by
//! time and, within a single instant, by insertion order (FIFO). The stable
//! tie-break is what makes simulation runs bit-for-bit reproducible: two
//! events scheduled for the same second are always delivered in the order
//! they were pushed, regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// An event queue delivering `(Time, E)` pairs in non-decreasing time order
/// with FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse both keys to pop the earliest
        // time first and, within a time, the lowest sequence number.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// The earliest pending event (time and payload) without removing it.
    ///
    /// Together with [`EventQueue::pop`] this supports *batch peeking*: a
    /// consumer can inspect whether the next event shares the instant (and
    /// kind) of the one it just popped and coalesce per-instant work — the
    /// simulator uses it to batch same-instant job arrivals into a single
    /// scheduling pass.
    pub fn peek(&self) -> Option<(Time, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Time(10), 1);
        q.push(Time(10), 2);
        assert_eq!(q.pop(), Some((Time(10), 1)));
        q.push(Time(10), 3);
        // 2 was pushed before 3, so it still comes first.
        assert_eq!(q.pop(), Some((Time(10), 2)));
        assert_eq!(q.pop(), Some((Time(10), 3)));
    }

    #[test]
    fn peek_exposes_payload_without_removal() {
        let mut q = EventQueue::new();
        q.push(Time(7), "b");
        q.push(Time(3), "a");
        assert_eq!(q.peek(), Some((Time(3), &"a")));
        assert_eq!(q.len(), 2, "peek must not remove");
        assert_eq!(q.pop(), Some((Time(3), "a")));
        assert_eq!(q.peek(), Some((Time(7), &"b")));
    }

    #[test]
    fn peek_supports_instant_batch_draining() {
        // The simulator's batching idiom: pop an event, then drain every
        // same-instant successor via peek.
        let mut q = EventQueue::new();
        q.push(Time(10), 1);
        q.push(Time(5), 2);
        q.push(Time(5), 3);
        q.push(Time(20), 4);
        let (t, first) = q.pop().unwrap();
        let mut batch = vec![first];
        while q.peek_time() == Some(t) {
            batch.push(q.pop().unwrap().1);
        }
        assert_eq!((t, batch), (Time(5), vec![2, 3]));
        assert_eq!(q.pop(), Some((Time(10), 1)));
        assert_eq!(q.peek(), Some((Time(20), &4)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(9), ());
        q.push(Time(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time(3)));
        assert!(!q.is_empty());
    }
}
