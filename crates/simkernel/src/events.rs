//! Deterministic event queue.
//!
//! A hand-rolled binary min-heap flattened onto a single `Vec` of
//! `(packed key, payload)` pairs. The key packs `(time, insertion
//! sequence)` into one `u128` — `(time << 64) | seq` — so the heap's
//! sift operations compare a single integer, and the unique sequence
//! number makes the key a *total* order: events at the same instant are
//! always delivered in the order they were pushed (FIFO), regardless of
//! heap internals. That stable tie-break is what makes simulation runs
//! bit-for-bit reproducible; it is deliberately identical to the
//! `(time, seq)` lexicographic order of the previous
//! `BinaryHeap`-of-structs implementation (see the `matches_reference_*`
//! tests).

use crate::time::Time;

/// An event queue delivering `(Time, E)` pairs in non-decreasing time order
/// with FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Index-tagged min-heap: `heap[0]` is the earliest entry; children of
    /// node `i` live at `2i + 1` and `2i + 2`.
    heap: Vec<(u128, E)>,
    seq: u64,
}

/// Packs `(time, seq)` into one integer whose natural order equals the
/// lexicographic order of the pair.
#[inline]
fn pack(time: Time, seq: u64) -> u128 {
    ((time.0 as u128) << 64) | (seq as u128)
}

/// The time half of a packed key (the cast is lossless by construction).
#[inline]
fn unpack_time(key: u128) -> Time {
    Time((key >> 64) as u64)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(n),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let key = pack(time, self.seq);
        self.seq += 1;
        self.heap.push((key, event));
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let (key, event) = self.heap.pop()?;
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((unpack_time(key), event))
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|&(key, _)| unpack_time(key))
    }

    /// The earliest pending event (time and payload) without removing it.
    ///
    /// Together with [`EventQueue::pop`] this supports *batch peeking*: a
    /// consumer can inspect whether the next event shares the instant (and
    /// kind) of the one it just popped and coalesce per-instant work — the
    /// simulator uses it to batch same-instant job arrivals into a single
    /// scheduling pass.
    pub fn peek(&self) -> Option<(Time, &E)> {
        self.heap.first().map(|(key, e)| (unpack_time(*key), e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Restores the heap property upward from `i` after a push.
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].0 <= self.heap[i].0 {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    /// Restores the heap property downward from `i` after a pop.
    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < n && self.heap[right].0 < self.heap[left].0 {
                smallest = right;
            }
            if self.heap[i].0 <= self.heap[smallest].0 {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Time(10), 1);
        q.push(Time(10), 2);
        assert_eq!(q.pop(), Some((Time(10), 1)));
        q.push(Time(10), 3);
        // 2 was pushed before 3, so it still comes first.
        assert_eq!(q.pop(), Some((Time(10), 2)));
        assert_eq!(q.pop(), Some((Time(10), 3)));
    }

    #[test]
    fn peek_exposes_payload_without_removal() {
        let mut q = EventQueue::new();
        q.push(Time(7), "b");
        q.push(Time(3), "a");
        assert_eq!(q.peek(), Some((Time(3), &"a")));
        assert_eq!(q.len(), 2, "peek must not remove");
        assert_eq!(q.pop(), Some((Time(3), "a")));
        assert_eq!(q.peek(), Some((Time(7), &"b")));
    }

    #[test]
    fn peek_supports_instant_batch_draining() {
        // The simulator's batching idiom: pop an event, then drain every
        // same-instant successor via peek.
        let mut q = EventQueue::new();
        q.push(Time(10), 1);
        q.push(Time(5), 2);
        q.push(Time(5), 3);
        q.push(Time(20), 4);
        let (t, first) = q.pop().unwrap();
        let mut batch = vec![first];
        while q.peek_time() == Some(t) {
            batch.push(q.pop().unwrap().1);
        }
        assert_eq!((t, batch), (Time(5), vec![2, 3]));
        assert_eq!(q.pop(), Some((Time(10), 1)));
        assert_eq!(q.peek(), Some((Time(20), &4)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(9), ());
        q.push(Time(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time(3)));
        assert!(!q.is_empty());
    }

    #[test]
    fn extreme_times_survive_packing() {
        let mut q = EventQueue::new();
        q.push(Time::MAX, "max");
        q.push(Time(0), "zero");
        q.push(Time(u64::MAX - 1), "almost");
        assert_eq!(q.pop(), Some((Time(0), "zero")));
        assert_eq!(q.pop(), Some((Time(u64::MAX - 1), "almost")));
        assert_eq!(q.pop(), Some((Time::MAX, "max")));
    }

    /// The previous implementation, preserved verbatim as the ordering
    /// oracle: a `BinaryHeap` of `(time, seq)`-ordered entries.
    struct Reference<E> {
        heap: BinaryHeap<(std::cmp::Reverse<(Time, u64)>, E)>,
        seq: u64,
    }

    impl<E: Ord> Reference<E> {
        fn new() -> Self {
            Reference {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, time: Time, event: E) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push((std::cmp::Reverse((time, seq)), event));
        }
        fn pop(&mut self) -> Option<(Time, E)> {
            self.heap.pop().map(|(std::cmp::Reverse((t, _)), e)| (t, e))
        }
    }

    /// Deterministic pseudo-random interleavings of pushes and pops: the
    /// flattened heap and the reference deliver identical sequences.
    #[test]
    fn matches_reference_on_random_interleavings() {
        let mut state = 0x2010_1234_5678_9abcu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _round in 0..50 {
            let mut q = EventQueue::new();
            let mut r = Reference::new();
            for op in 0..200 {
                if next() % 3 == 0 {
                    assert_eq!(q.pop(), r.pop(), "divergence at op {op}");
                } else {
                    // Small time range forces heavy same-instant ties.
                    let t = Time(next() % 16);
                    let payload = op;
                    q.push(t, payload);
                    r.push(t, payload);
                }
            }
            loop {
                let (a, b) = (q.pop(), r.pop());
                assert_eq!(a, b, "drain divergence");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
