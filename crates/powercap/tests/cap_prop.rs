//! Property tests for the power-cap subsystem.
//!
//! Over arbitrary job mixes:
//!
//! * a **hard-capped** run never exceeds its budget at any event boundary
//!   (checked on the full ledger step series), and still completes every
//!   job;
//! * **sleep transitions never strand a processor**: sleeping never
//!   perturbs the schedule, every sleeping processor is woken on demand,
//!   and wake energy/latency are charged exactly once per wake;
//! * the ledger's `∫ P dt` agrees with the post-hoc
//!   [`bsld_power::EnergyAccount`] report on the same run;
//! * for **every** power model (paper, constant, linear, cubic,
//!   empirical), the ledger-integrated energy equals the closed-form
//!   integral of the piecewise-constant draw on random gear traces, and a
//!   multi-rail ledger's per-rail energies sum to the aggregate.

#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
use bsld_cluster::{Cluster, GearSet};
use bsld_model::GearId;
use bsld_model::Job;
use bsld_power::{
    BetaModel, Constant, Cubic, Empirical, EnergyAccount, Linear, PaperDvfs, PowerModel, Rail,
    RailKind, RailSet,
};
use bsld_powercap::{PowerCap, PowerCapPolicy, PowerLedger, SleepConfig, SleepState};
use bsld_sched::{simulate, simulate_with_hook, EngineConfig, FixedGearPolicy};
use bsld_simkernel::Time;
use proptest::prelude::*;

const CPUS: u32 = 16;

/// Strategy: a random rigid job (arrival, cpus, runtime, requested).
fn arb_job() -> impl Strategy<Value = (u64, u32, u64, u64)> {
    (0u64..20_000, 1u32..=CPUS, 1u64..5_000, 1u64..4)
        .prop_map(|(arr, cpus, run, infl)| (arr, cpus, run, run.saturating_mul(infl).max(run)))
}

fn build_jobs(raw: Vec<(u64, u32, u64, u64)>) -> Vec<Job> {
    let mut arrivals: Vec<u64> = raw.iter().map(|r| r.0).collect();
    arrivals.sort_unstable();
    raw.into_iter()
        .zip(arrivals)
        .enumerate()
        .map(|(i, ((_, cpus, run, req), arr))| Job::new(i as u32, Time(arr), cpus, run, req))
        .collect()
}

fn pm() -> PaperDvfs {
    PaperDvfs::paper(GearSet::paper())
}

/// One model of each kind, anchored to arbitrary but valid parameters.
fn make_model(idx: usize) -> Box<dyn PowerModel> {
    let gs = GearSet::paper();
    match idx {
        0 => Box::new(PaperDvfs::paper(gs)),
        1 => Box::new(Constant::new(gs, 5.0)),
        2 => Box::new(Linear::new(gs, 2.0, 9.0)),
        3 => Box::new(Cubic::new(gs, 2.0, 9.0)),
        _ => Box::new(
            Empirical::from_points(gs, vec![(0.0, 3.0), (0.4, 4.0), (1.0, 12.0)])
                .expect("valid points"),
        ),
    }
}

/// Drives `ledger` through a random start/finish script and returns the
/// closed-form `∫ P dt`: the draw is piecewise constant, so the integral
/// is the exact sum of level × duration over the segments, recomputed here
/// from first principles (independent of the ledger's incremental sums).
fn walk_ledger(
    ledger: &mut PowerLedger,
    pm: &dyn PowerModel,
    script: &[(u8, u8, u32, u64)],
) -> f64 {
    let mut t = 0u64;
    let mut active: Vec<(u32, GearId)> = Vec::new();
    let mut used = 0u32;
    let mut manual = 0.0;
    for &(op, gear, cpus, dt) in script {
        let level = active
            .iter()
            .map(|&(c, g)| c as f64 * pm.p_active(g))
            .sum::<f64>()
            + (CPUS - used) as f64 * pm.p_idle();
        manual += level * dt as f64;
        t += dt;
        if op == 0 && used + cpus <= CPUS {
            let g = GearId(gear);
            ledger.start(t, cpus, g);
            active.push((cpus, g));
            used += cpus;
        } else if let Some((c, g)) = active.pop() {
            ledger.finish(t, c, g);
            used -= c;
        } else {
            ledger.advance(t);
        }
    }
    manual
}

fn run_hooked(
    jobs: &[Job],
    cap: PowerCap,
    sleep: SleepConfig,
) -> (Vec<bsld_model::JobOutcome>, PowerCapPolicy) {
    let gears = GearSet::paper();
    let tm = BetaModel::new(gears.clone());
    let policy = FixedGearPolicy::new(gears.top());
    let mut hook = PowerCapPolicy::new(&pm(), CPUS, cap, sleep);
    let res = simulate_with_hook(
        &Cluster::new("prop", CPUS, gears),
        jobs,
        &policy,
        &tm,
        &EngineConfig::default(),
        &mut hook,
    )
    .expect("budgets in these tests are feasible");
    (res.outcomes, hook)
}

/// A hard budget that is infeasible on an awake-idle machine but feasible
/// once the uninvolved processors sleep: the engine must retry the
/// deferred start at the sleep transition instead of stalling.
#[test]
fn deferred_start_retries_at_sleep_transition() {
    let pm = pm();
    let pa0 = pm.p_active(bsld_model::GearId(0));
    let pi = pm.p_idle();
    // Above the 16-processor idle floor, below floor + an 8-cpu gear-0
    // start, and above the post-shallow-sleep draw of that start.
    let budget = 16.0 * pi + 4.0 * (pa0 - pi);
    let jobs = vec![Job::new(0, Time(0), 8, 100, 100)];
    let (outcomes, hook) = run_hooked(
        &jobs,
        PowerCap::Hard { budget },
        SleepConfig::paper_default(),
    );
    assert_eq!(outcomes.len(), 1);
    // paper_default's shallow state kicks in after 60 s idle; the retry
    // pass at that instant admits the job.
    assert_eq!(
        outcomes[0].start,
        Time(60),
        "start at the first sleep transition"
    );
    for &(t, p) in hook.ledger().series() {
        assert!(p <= budget + 1e-6, "draw {p} over budget {budget} at t={t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A hard cap is never violated at any event boundary, with or
    /// without sleep states, and every job still completes.
    #[test]
    fn hard_cap_never_exceeded(
        raw in proptest::collection::vec(arb_job(), 1..80),
        cap_fraction in 0.35f64..1.0,
        with_sleep in proptest::bool::ANY,
    ) {
        let jobs = build_jobs(raw);
        let budget = cap_fraction * PowerCapPolicy::peak_draw(&pm(), CPUS);
        let sleep = if with_sleep { SleepConfig::paper_default() } else { SleepConfig::none() };
        let (outcomes, hook) = run_hooked(&jobs, PowerCap::Hard { budget }, sleep);
        prop_assert_eq!(outcomes.len(), jobs.len());
        bsld_sched::validate_schedule(&outcomes, CPUS).map_err(TestCaseError::fail)?;
        for &(t, p) in hook.ledger().series() {
            prop_assert!(p <= budget + 1e-6, "draw {} over budget {} at t={}", p, budget, t);
        }
        prop_assert!(hook.ledger().peak() <= budget + 1e-6);
    }

    /// Sleeping never strands a processor: the schedule is identical to a
    /// sleepless run, every needed processor wakes, and wake costs are
    /// charged exactly once per wake.
    #[test]
    fn sleep_never_strands_a_processor(
        raw in proptest::collection::vec(arb_job(), 1..80),
        timeout in 1u64..2_000,
        wake_energy in 0.0f64..10.0,
        wake_latency in 0u64..30,
    ) {
        let jobs = build_jobs(raw);
        let state = SleepState {
            idle_timeout_s: timeout,
            wake_latency_s: wake_latency,
            wake_energy,
            power_fraction: 0.1,
        };
        let (slept, hook) = run_hooked(&jobs, PowerCap::Uncapped, SleepConfig::single(state));
        let gears = GearSet::paper();
        let tm = BetaModel::new(gears.clone());
        let policy = FixedGearPolicy::new(gears.top());
        let plain = simulate(
            &Cluster::new("prop", CPUS, gears),
            &jobs,
            &policy,
            &tm,
            &EngineConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(&slept, &plain.outcomes, "sleeping must not perturb the schedule");

        let stats = hook.idle_manager().stats();
        prop_assert!(stats.wakes <= stats.sleeps, "every wake needs an earlier sleep");
        // Exactly-once charging: totals are the per-wake cost times the
        // wake count (single-state ladder).
        prop_assert!(
            (stats.wake_energy - stats.wakes as f64 * wake_energy).abs() < 1e-6,
            "wake energy {} for {} wakes at {} each",
            stats.wake_energy, stats.wakes, wake_energy
        );
        prop_assert_eq!(stats.wake_latency_s, stats.wakes * wake_latency);
        // Nothing stranded: busy must be 0 at the end, and the manager
        // still tracks the whole machine.
        prop_assert_eq!(hook.ledger().busy(), 0);
        hook.idle_manager()
            .check_invariants(CPUS)
            .map_err(TestCaseError::fail)?;
    }

    /// The live ledger integral equals the post-hoc energy report
    /// (idle-aware scenario) on the same uncapped, sleepless run.
    #[test]
    fn ledger_agrees_with_post_hoc_energy_report(
        raw in proptest::collection::vec(arb_job(), 1..80),
    ) {
        let jobs = build_jobs(raw);
        let (outcomes, mut_hook) = run_hooked(&jobs, PowerCap::Uncapped, SleepConfig::none());
        let makespan = outcomes.iter().map(|o| o.finish.as_secs()).max().unwrap_or(0);
        let report = mut_hook.into_report(makespan);
        let pm = pm();
        let mut acc = EnergyAccount::new();
        for o in &outcomes {
            acc.add_outcome(&pm, o);
        }
        let post_hoc = acc.finish(&pm, CPUS, makespan);
        let diff = (report.energy - post_hoc.with_idle).abs();
        let tol = post_hoc.with_idle.abs() * 1e-9 + 1e-9;
        prop_assert!(
            diff <= tol,
            "ledger {} vs post-hoc {}", report.energy, post_hoc.with_idle
        );
    }

    /// Every power model's ledger-integrated energy equals the closed-form
    /// integral of its piecewise-constant draw on random gear traces.
    #[test]
    fn every_model_matches_closed_form_integral(
        model_idx in 0usize..5,
        script in proptest::collection::vec((0u8..2, 0u8..6, 1u32..8, 1u64..500), 1..60),
    ) {
        let model = make_model(model_idx);
        let mut ledger = PowerLedger::new(model.as_ref(), CPUS);
        let manual = walk_ledger(&mut ledger, model.as_ref(), &script);
        let tol = manual.abs() * 1e-9 + 1e-9;
        prop_assert!(
            (ledger.energy() - manual).abs() <= tol,
            "model {}: ledger {} vs closed form {}", model_idx, ledger.energy(), manual
        );
    }

    /// A multi-rail ledger's per-rail energies sum to the aggregate, and
    /// the aggregate still equals the closed-form integral of the summed
    /// model.
    #[test]
    fn rail_energies_sum_to_aggregate_on_random_traces(
        script in proptest::collection::vec((0u8..2, 0u8..6, 1u32..8, 1u64..500), 1..60),
    ) {
        let gs = GearSet::paper();
        let set = RailSet::new(vec![
            Rail::new(RailKind::Cpu, Box::new(PaperDvfs::paper(gs.clone()))),
            Rail::new(RailKind::Memory, Box::new(Linear::new(gs.clone(), 1.0, 3.0))),
            Rail::new(RailKind::Interconnect, Box::new(Constant::new(gs, 2.0))),
        ])
        .expect("valid rail layout");
        let mut ledger = PowerLedger::with_rails(&set, CPUS);
        let manual = walk_ledger(&mut ledger, &set, &script);
        let tol = manual.abs() * 1e-9 + 1e-9;
        prop_assert!((ledger.energy() - manual).abs() <= tol);
        let rails = ledger.rail_energies();
        prop_assert_eq!(rails.len(), 3);
        let sum: f64 = rails.iter().map(|r| r.energy).sum();
        prop_assert!(
            (sum - ledger.energy()).abs() <= tol,
            "rails {} vs aggregate {}", sum, ledger.energy()
        );
    }
}
