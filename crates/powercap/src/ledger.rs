//! The cluster power ledger: instantaneous draw as a step-function signal.

use bsld_model::GearId;
use bsld_power::{PowerModel, RailKind, RailSet};

/// Per-rail bookkeeping mirroring the aggregate ledger.
///
/// Each rail carries its own `P_active` table and `P_idle`, and integrates
/// its own draw on the same event stream. The aggregate fields of
/// [`PowerLedger`] are maintained independently (not derived from the
/// rails), so the single-rail default stays bit-identical to the
/// pre-rail ledger.
#[derive(Debug, Clone)]
struct RailAccount {
    kind: RailKind,
    p_active: Vec<f64>,
    p_idle: f64,
    /// This rail's share of the aggregate idle draw — used to split
    /// sleep-state draw (expressed as a fraction of aggregate `P_idle`)
    /// across rails.
    idle_share: f64,
    busy_power: f64,
    sleep_power: f64,
    power: f64,
    integral: f64,
    impulses: f64,
}

/// One rail's share of the total energy, as reported by
/// [`PowerLedger::rail_energies`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailEnergy {
    /// Which subsystem this rail meters.
    pub kind: RailKind,
    /// `∫ P_rail dt` plus this rail's share of wake impulses.
    pub energy: f64,
}

/// Tracks instantaneous cluster power and its exact time integral.
///
/// Draw decomposes into three components the ledger maintains
/// incrementally:
///
/// * **busy** — `Σ cpus × P_active(gear)` over running jobs;
/// * **idle** — awake-but-free processors at `P_idle`;
/// * **sleep** — sleeping processors at their state's fraction of
///   `P_idle`.
///
/// Every mutation first integrates the current level up to the mutation
/// time (the signal is piecewise constant between events, so the integral
/// is exact), then records the new level in the step series. Wake-up
/// energy penalties are charged as impulses: they contribute to
/// [`PowerLedger::energy`] but not to the power level.
///
/// When built from a multi-rail [`RailSet`] the same event stream is also
/// integrated per rail, attributing energy to CPU / memory / interconnect;
/// the aggregate (cap enforcement, peak, series) is always the sum of the
/// rails.
#[derive(Debug, Clone)]
pub struct PowerLedger {
    p_active: Vec<f64>,
    p_idle: f64,
    total: u32,
    busy: u32,
    sleeping: u32,
    busy_power: f64,
    sleep_power: f64,
    power: f64,
    last_t: u64,
    integral: f64,
    impulses: f64,
    peak: f64,
    series: Vec<(u64, f64)>,
    rails: Vec<RailAccount>,
}

impl PowerLedger {
    /// A ledger for a machine of `total` processors priced by `pm` as a
    /// single CPU rail, all idle-awake at time 0.
    pub fn new(pm: &dyn PowerModel, total: u32) -> PowerLedger {
        Self::from_parts(&[(RailKind::Cpu, pm)], total)
    }

    /// A ledger attributing draw across `rails` (one account per rail),
    /// all processors idle-awake at time 0. The aggregate tables are the
    /// per-gear sums of the rails'.
    pub fn with_rails(rails: &RailSet, total: u32) -> PowerLedger {
        let parts: Vec<(RailKind, &dyn PowerModel)> = rails
            .rails()
            .iter()
            .map(|r| (r.kind(), r.model()))
            .collect();
        Self::from_parts(&parts, total)
    }

    fn from_parts(parts: &[(RailKind, &dyn PowerModel)], total: u32) -> PowerLedger {
        assert!(!parts.is_empty(), "ledger needs at least one rail");
        let gears = parts[0].1.gears();
        let p_active: Vec<f64> = gears
            .ascending()
            .map(|(id, _)| parts.iter().map(|(_, m)| m.p_active(id)).sum())
            .collect();
        let p_idle: f64 = parts.iter().map(|(_, m)| m.p_idle()).sum();
        let rails: Vec<RailAccount> = parts
            .iter()
            .enumerate()
            .map(|(i, (kind, m))| {
                let idle_share = if p_idle > 0.0 {
                    m.p_idle() / p_idle
                } else if i == 0 {
                    1.0
                } else {
                    0.0
                };
                RailAccount {
                    kind: *kind,
                    p_active: gears.ascending().map(|(id, _)| m.p_active(id)).collect(),
                    p_idle: m.p_idle(),
                    idle_share,
                    busy_power: 0.0,
                    sleep_power: 0.0,
                    power: total as f64 * m.p_idle(),
                    integral: 0.0,
                    impulses: 0.0,
                }
            })
            .collect();
        let power = total as f64 * p_idle;
        PowerLedger {
            p_active,
            p_idle,
            total,
            busy: 0,
            sleeping: 0,
            busy_power: 0.0,
            sleep_power: 0.0,
            power,
            last_t: 0,
            integral: 0.0,
            impulses: 0.0,
            peak: power,
            series: vec![(0, power)],
            rails,
        }
    }

    /// Machine size this ledger prices.
    pub fn total_cpus(&self) -> u32 {
        self.total
    }

    /// `P_active` for `gear`, in the ledger's normalised units.
    pub fn p_active(&self, gear: GearId) -> f64 {
        self.p_active[gear.index()]
    }

    /// `P_idle` per awake-but-free processor.
    pub fn p_idle(&self) -> f64 {
        self.p_idle
    }

    /// Current cluster draw.
    pub fn power_now(&self) -> f64 {
        self.power
    }

    /// Highest draw observed so far.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Processors currently running jobs.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Processors currently in a sleep state.
    pub fn sleeping(&self) -> u32 {
        self.sleeping
    }

    /// `∫ P dt` up to the last advanced instant, plus wake impulses.
    pub fn energy(&self) -> f64 {
        self.integral + self.impulses
    }

    /// `∫ P dt` alone (no impulses) up to the last advanced instant.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// The step series `(time, power)`: the draw from each instant until
    /// the next entry. At most one entry per instant (the final level).
    pub fn series(&self) -> &[(u64, f64)] {
        &self.series
    }

    /// Number of rails this ledger attributes draw to.
    pub fn rail_count(&self) -> usize {
        self.rails.len()
    }

    /// Per-rail energy up to the last advanced instant. Wake impulses are
    /// charged to the CPU rail (waking hardware is a processor event).
    pub fn rail_energies(&self) -> Vec<RailEnergy> {
        self.rails
            .iter()
            .map(|r| RailEnergy {
                kind: r.kind,
                energy: r.integral + r.impulses,
            })
            .collect()
    }

    /// Integrates the current level up to `t` (idempotent per instant).
    ///
    /// # Panics
    /// Panics in debug builds if `t` precedes the last recorded instant —
    /// ledger events must arrive in time order.
    pub fn advance(&mut self, t: u64) {
        debug_assert!(
            t >= self.last_t,
            "ledger time went backwards: {} < {}",
            t,
            self.last_t
        );
        if t > self.last_t {
            let dt = (t - self.last_t) as f64;
            self.integral += self.power * dt;
            for r in &mut self.rails {
                r.integral += r.power * dt;
            }
            self.last_t = t;
        }
    }

    fn recompute(&mut self, t: u64) {
        let idle = self.total - self.busy - self.sleeping;
        self.power = self.busy_power + idle as f64 * self.p_idle + self.sleep_power;
        self.peak = self.peak.max(self.power);
        for r in &mut self.rails {
            r.power = r.busy_power + idle as f64 * r.p_idle + r.sleep_power;
        }
        match self.series.last_mut() {
            Some(last) if last.0 == t => last.1 = self.power,
            _ => self.series.push((t, self.power)),
        }
    }

    /// A job started `cpus` processors at `gear` at time `t`.
    pub fn start(&mut self, t: u64, cpus: u32, gear: GearId) {
        self.advance(t);
        self.busy += cpus;
        debug_assert!(
            self.busy + self.sleeping <= self.total,
            "ledger overcommitted"
        );
        self.busy_power += cpus as f64 * self.p_active(gear);
        for r in &mut self.rails {
            r.busy_power += cpus as f64 * r.p_active[gear.index()];
        }
        self.recompute(t);
    }

    /// A job running `cpus` processors at `gear` completed at time `t`.
    pub fn finish(&mut self, t: u64, cpus: u32, gear: GearId) {
        self.advance(t);
        debug_assert!(self.busy >= cpus, "ledger finish without matching start");
        self.busy -= cpus;
        self.busy_power -= cpus as f64 * self.p_active(gear);
        for r in &mut self.rails {
            r.busy_power -= cpus as f64 * r.p_active[gear.index()];
        }
        if self.busy == 0 {
            self.busy_power = 0.0; // absorb float drift at quiescence
            for r in &mut self.rails {
                r.busy_power = 0.0;
            }
        }
        self.recompute(t);
    }

    /// A running job switched `cpus` processors from `from` to `to`.
    pub fn gear_change(&mut self, t: u64, cpus: u32, from: GearId, to: GearId) {
        self.advance(t);
        self.busy_power += cpus as f64 * (self.p_active(to) - self.p_active(from));
        for r in &mut self.rails {
            r.busy_power += cpus as f64 * (r.p_active[to.index()] - r.p_active[from.index()]);
        }
        self.recompute(t);
    }

    /// `n` awake-idle processors entered a sleep state drawing `p_state`
    /// each.
    pub fn sleep_enter(&mut self, t: u64, n: u32, p_state: f64) {
        self.advance(t);
        self.sleeping += n;
        debug_assert!(
            self.busy + self.sleeping <= self.total,
            "slept a busy processor"
        );
        self.sleep_power += n as f64 * p_state;
        for r in &mut self.rails {
            r.sleep_power += n as f64 * p_state * r.idle_share;
        }
        self.recompute(t);
    }

    /// `n` sleeping processors moved from a state drawing `old_p` each to
    /// one drawing `new_p` each.
    pub fn sleep_deepen(&mut self, t: u64, n: u32, old_p: f64, new_p: f64) {
        self.advance(t);
        self.sleep_power += n as f64 * (new_p - old_p);
        for r in &mut self.rails {
            r.sleep_power += n as f64 * (new_p - old_p) * r.idle_share;
        }
        self.recompute(t);
    }

    /// `n` processors woke from a state drawing `p_state` each, charging
    /// `energy` (total, not per processor) as a wake impulse.
    pub fn wake(&mut self, t: u64, n: u32, p_state: f64, energy: f64) {
        self.advance(t);
        debug_assert!(self.sleeping >= n, "woke more processors than sleep");
        self.sleeping -= n;
        self.sleep_power -= n as f64 * p_state;
        for r in &mut self.rails {
            r.sleep_power -= n as f64 * p_state * r.idle_share;
        }
        if self.sleeping == 0 {
            self.sleep_power = 0.0;
            for r in &mut self.rails {
                r.sleep_power = 0.0;
            }
        }
        self.impulses += energy;
        self.rails[0].impulses += energy;
        self.recompute(t);
    }

    /// Draw delta of starting `cpus` at `gear` when `from_idle` of them
    /// come from awake-idle and the rest from sources drawing
    /// `sourced_sleep_power` in total.
    pub fn start_delta(
        &self,
        cpus: u32,
        gear: GearId,
        from_idle: u32,
        sourced_sleep_power: f64,
    ) -> f64 {
        cpus as f64 * self.p_active(gear) - from_idle as f64 * self.p_idle - sourced_sleep_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;
    use bsld_power::{Constant, Linear, PaperDvfs, Rail};

    fn ledger(total: u32) -> PowerLedger {
        PowerLedger::new(&PaperDvfs::paper(GearSet::paper()), total)
    }

    fn three_rails() -> RailSet {
        RailSet::new(vec![
            Rail::new(RailKind::Cpu, Box::new(PaperDvfs::paper(GearSet::paper()))),
            Rail::new(
                RailKind::Memory,
                Box::new(Linear::new(GearSet::paper(), 1.0, 3.0)),
            ),
            Rail::new(
                RailKind::Interconnect,
                Box::new(Constant::new(GearSet::paper(), 2.0)),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn starts_and_finishes_return_to_idle_floor() {
        let mut l = ledger(8);
        let floor = l.power_now();
        assert!(floor > 0.0, "idle machine still draws");
        let top = GearId(5);
        l.start(10, 4, top);
        assert!(l.power_now() > floor);
        l.finish(110, 4, top);
        assert!((l.power_now() - floor).abs() < 1e-9);
        assert_eq!(l.busy(), 0);
    }

    #[test]
    fn integral_matches_hand_computation() {
        let mut l = ledger(4);
        let p_idle = l.p_idle();
        let p_top = l.p_active(GearId(5));
        // [0,10): 4 idle. [10,30): 2 busy top + 2 idle. [30,50): idle.
        l.start(10, 2, GearId(5));
        l.finish(30, 2, GearId(5));
        l.advance(50);
        let expected =
            10.0 * 4.0 * p_idle + 20.0 * (2.0 * p_top + 2.0 * p_idle) + 20.0 * 4.0 * p_idle;
        assert!(
            (l.energy() - expected).abs() < 1e-9,
            "{} vs {expected}",
            l.energy()
        );
    }

    #[test]
    fn series_is_step_function_with_unique_instants() {
        let mut l = ledger(4);
        l.start(5, 1, GearId(2));
        l.start(5, 1, GearId(3));
        l.finish(9, 1, GearId(2));
        let times: Vec<u64> = l.series().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0, 5, 9], "same-instant updates must merge");
        for w in l.series().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn gear_change_adjusts_level() {
        let mut l = ledger(2);
        l.start(0, 2, GearId(0));
        let low = l.power_now();
        l.gear_change(10, 2, GearId(0), GearId(5));
        assert!(l.power_now() > low);
        l.finish(20, 2, GearId(5));
        assert_eq!(l.busy(), 0);
        assert!((l.power_now() - 2.0 * l.p_idle()).abs() < 1e-9);
    }

    #[test]
    fn sleep_reduces_draw_and_wake_charges_impulse() {
        let mut l = ledger(4);
        let floor = l.power_now();
        let p_state = 0.2 * l.p_idle();
        l.sleep_enter(100, 3, p_state);
        assert!(l.power_now() < floor);
        assert_eq!(l.sleeping(), 3);
        let before = l.energy();
        l.advance(200);
        l.wake(200, 3, p_state, 1.5);
        assert_eq!(l.sleeping(), 0);
        assert!((l.power_now() - floor).abs() < 1e-9);
        assert!(
            l.energy() > before + 1.5 - 1e-9,
            "wake impulse must be charged"
        );
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut l = ledger(4);
        l.start(0, 4, GearId(5));
        let high = l.power_now();
        l.finish(10, 4, GearId(5));
        assert!((l.peak() - high).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time went backwards")]
    fn rejects_time_regression() {
        let mut l = ledger(2);
        l.start(10, 1, GearId(0));
        l.start(5, 1, GearId(0));
    }

    #[test]
    fn single_rail_energy_is_bit_identical_to_aggregate() {
        let mut l = ledger(8);
        l.start(10, 4, GearId(5));
        l.gear_change(40, 4, GearId(5), GearId(1));
        l.finish(90, 4, GearId(1));
        l.advance(120);
        let rails = l.rail_energies();
        assert_eq!(rails.len(), 1);
        assert_eq!(rails[0].kind, RailKind::Cpu);
        assert_eq!(rails[0].energy.to_bits(), l.energy().to_bits());
    }

    #[test]
    fn rail_energies_sum_to_aggregate() {
        let set = three_rails();
        let mut l = PowerLedger::with_rails(&set, 8);
        let p_state = 0.2 * l.p_idle();
        l.start(10, 4, GearId(5));
        l.gear_change(50, 4, GearId(5), GearId(2));
        l.finish(100, 4, GearId(2));
        l.sleep_enter(160, 6, p_state);
        l.wake(400, 6, p_state, 2.5);
        l.start(410, 2, GearId(0));
        l.finish(500, 2, GearId(0));
        l.advance(600);
        let rails = l.rail_energies();
        assert_eq!(rails.len(), 3);
        let sum: f64 = rails.iter().map(|r| r.energy).sum();
        assert!(
            (sum - l.energy()).abs() < 1e-9 * l.energy().max(1.0),
            "rails {sum} vs aggregate {}",
            l.energy()
        );
        // The wake impulse lands on the CPU rail.
        assert_eq!(rails[0].kind, RailKind::Cpu);
        assert!(rails.iter().all(|r| r.energy > 0.0));
    }

    #[test]
    fn multi_rail_aggregate_tables_are_sums() {
        let set = three_rails();
        let l = PowerLedger::with_rails(&set, 4);
        let top = GearSet::paper().top();
        let paper = PaperDvfs::paper(GearSet::paper());
        let expected = paper.p_active(top) + 3.0 + 2.0;
        assert!((l.p_active(top) - expected).abs() < 1e-12);
        assert!((l.p_idle() - (paper.p_idle() + 1.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn constant_rail_ignores_sleep_and_gears() {
        // A constant interconnect rail has idle_share > 0, so sleeping does
        // scale it down (sleep draw is expressed vs aggregate idle), but
        // gear changes must not move it.
        let set = three_rails();
        let mut l = PowerLedger::with_rails(&set, 4);
        l.start(0, 4, GearId(0));
        let net_before = l.rail_energies()[2].energy;
        l.gear_change(10, 4, GearId(0), GearId(5));
        l.advance(20);
        let rails = l.rail_energies();
        // [0,20): constant rail integrates 4 cpus × 2.0 per second.
        let expected_net = 20.0 * 4.0 * 2.0;
        assert!(
            (rails[2].energy - expected_net).abs() < 1e-9,
            "net rail {} vs {expected_net} (before gear change {net_before})",
            rails[2].energy
        );
    }
}
