//! Power-cap enforcement: the [`bsld_sched::PowerHook`] implementation.

use bsld_model::GearId;
use bsld_power::{PowerModel, RailSet};
use bsld_sched::PowerHook;
use bsld_simkernel::Time;

use crate::ledger::{PowerLedger, RailEnergy};
use crate::sleep::{IdleManager, SleepConfig, SleepStats};

/// Absolute slack added to budget comparisons to absorb float drift in the
/// incrementally-maintained draw.
const CAP_EPS: f64 = 1e-9;

/// The cluster power budget policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerCap {
    /// No budget: the hook only observes (ledger + sleep states).
    Uncapped,
    /// Draw must never exceed `budget` (normalised power units) at any
    /// event boundary. Starts that cannot fit even down-geared are
    /// deferred; an infeasible budget surfaces as
    /// [`bsld_sched::SimError::Stalled`].
    Hard {
        /// The budget, normalised power units.
        budget: f64,
    },
    /// Like [`PowerCap::Hard`], but an over-budget start is admitted at
    /// the most frugal gear (and recorded as a violation) once more than
    /// `wq_escape` other jobs are waiting — the queue-depth escape hatch
    /// mirroring the paper's `WQ_threshold` gate — or when nothing is
    /// running, since deferring onto an idle machine could never succeed
    /// later. A soft cap therefore never stalls.
    Soft {
        /// The budget, normalised power units.
        budget: f64,
        /// Maximum tolerated wait-queue depth before the escape hatch
        /// opens.
        wq_escape: usize,
    },
}

impl PowerCap {
    /// The configured budget, if any.
    pub fn budget(&self) -> Option<f64> {
        match self {
            PowerCap::Uncapped => None,
            PowerCap::Hard { budget } | PowerCap::Soft { budget, .. } => Some(*budget),
        }
    }
}

/// Enforcement counters. Admission counters (`downgears`,
/// `soft_violations`) reflect starts the engine actually honored: an
/// admission the engine later declined (see
/// [`PowerHook::admission_declined`]) is reversed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CapStats {
    /// Start admissions denied because no gear fit the budget. Counted
    /// per scheduling pass: a job the engine re-considers at many events
    /// while it waits contributes one deferral per retry, so this
    /// measures sustained budget pressure, not distinct jobs.
    pub deferrals: u64,
    /// Starts admitted at a lower gear than the frequency policy chose.
    pub downgears: u64,
    /// Dynamic-boost gear changes vetoed by the budget (per attempt; the
    /// engine retries boosts at later events while the queue stays deep).
    pub boost_vetoes: u64,
    /// Soft-cap escape-hatch admissions (each exceeded the budget).
    pub soft_violations: u64,
}

/// What the most recent (not yet consumed) admission counted, so a
/// declined admission can be un-counted.
#[derive(Debug, Clone, Copy)]
struct LastAdmission {
    downgear: bool,
    violation: bool,
}

/// Everything a power-capped run reports about cluster power.
#[derive(Debug, Clone)]
pub struct PowerReport {
    /// The step series `(time, power)` of cluster draw.
    pub series: Vec<(u64, f64)>,
    /// `∫ P dt` over the run plus wake-energy impulses.
    pub energy: f64,
    /// Highest draw observed.
    pub peak: f64,
    /// Time-averaged draw over the observed span (0 for an empty run).
    pub average: f64,
    /// The budget, if one was configured.
    pub budget: Option<f64>,
    /// Enforcement counters.
    pub cap: CapStats,
    /// Sleep/wake counters.
    pub sleep: SleepStats,
    /// Per-rail energy attribution (one entry per rail, CPU first; a
    /// single entry for the default CPU-only layout).
    pub rails: Vec<RailEnergy>,
}

/// A [`PowerHook`] that tracks cluster draw in a [`PowerLedger`], manages
/// idle sleep states through an [`IdleManager`], and enforces a
/// [`PowerCap`] by vetoing or down-gearing starts and boosts.
#[derive(Debug)]
pub struct PowerCapPolicy {
    ledger: PowerLedger,
    idle: IdleManager,
    cap: PowerCap,
    stats: CapStats,
    gear_count: usize,
    last_admission: Option<LastAdmission>,
    sink: Option<std::sync::Arc<dyn bsld_obs::TraceSink>>,
}

impl PowerCapPolicy {
    /// A policy over a machine of `total_cpus` priced by `pm` as a single
    /// CPU rail.
    pub fn new(pm: &dyn PowerModel, total_cpus: u32, cap: PowerCap, sleep: SleepConfig) -> Self {
        let ledger = PowerLedger::new(pm, total_cpus);
        let idle = IdleManager::new(sleep, total_cpus, pm.p_idle());
        PowerCapPolicy {
            ledger,
            idle,
            cap,
            stats: CapStats::default(),
            gear_count: pm.gears().len(),
            last_admission: None,
            sink: None,
        }
    }

    /// A policy over a machine of `total_cpus` whose draw is attributed
    /// across `rails`; cap enforcement and sleep ladders act on the
    /// aggregate exactly as in [`PowerCapPolicy::new`].
    pub fn with_rails(rails: &RailSet, total_cpus: u32, cap: PowerCap, sleep: SleepConfig) -> Self {
        let ledger = PowerLedger::with_rails(rails, total_cpus);
        let idle = IdleManager::new(sleep, total_cpus, rails.p_idle());
        PowerCapPolicy {
            ledger,
            idle,
            cap,
            stats: CapStats::default(),
            gear_count: rails.gears().len(),
            last_admission: None,
            sink: None,
        }
    }

    /// Attaches a trace sink: sleep-ladder transitions are recorded as
    /// [`bsld_obs::TraceEvent::SleepTransition`] snapshots. Observation
    /// only — enforcement and accounting are unchanged.
    #[must_use]
    pub fn with_sink(mut self, sink: std::sync::Arc<dyn bsld_obs::TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Emits a [`bsld_obs::TraceEvent::SleepTransition`] if the sleep
    /// ladder moved between `before` and now.
    fn emit_sleep_delta(&self, now: Time, before: (u64, u64, u32)) {
        if let Some(sink) = &self.sink {
            let after = (
                self.idle.stats().sleeps,
                self.idle.stats().wakes,
                self.idle.sleeping(),
            );
            if after != before {
                sink.record(bsld_obs::TraceEvent::SleepTransition {
                    t: now.as_micros(),
                    sleeps: after.0,
                    wakes: after.1,
                    sleeping: u64::from(after.2),
                });
            }
        }
    }

    /// Snapshot of the sleep ladder for [`Self::emit_sleep_delta`], taken
    /// only when a sink is attached.
    fn sleep_snapshot(&self) -> (u64, u64, u32) {
        (
            self.idle.stats().sleeps,
            self.idle.stats().wakes,
            self.idle.sleeping(),
        )
    }

    /// The machine's peak draw — every processor busy at the top gear —
    /// the natural reference for expressing budgets as fractions.
    pub fn peak_draw(pm: &dyn PowerModel, total_cpus: u32) -> f64 {
        total_cpus as f64 * pm.p_active(pm.gears().top())
    }

    /// Current cluster draw.
    pub fn power_now(&self) -> f64 {
        self.ledger.power_now()
    }

    /// The live ledger (read access for tests and diagnostics).
    pub fn ledger(&self) -> &PowerLedger {
        &self.ledger
    }

    /// The live idle manager (read access for tests and diagnostics).
    pub fn idle_manager(&self) -> &IdleManager {
        &self.idle
    }

    /// Enforcement counters so far.
    pub fn cap_stats(&self) -> CapStats {
        self.stats
    }

    /// Draw delta of starting `cpus` at `gear` right now, given where the
    /// processors would be sourced from.
    fn delta(&self, cpus: u32, gear: GearId) -> f64 {
        let (from_idle, sleep_power) = self.idle.preview_sources(cpus);
        self.ledger.start_delta(cpus, gear, from_idle, sleep_power)
    }

    /// The highest admissible gear not above `gear`, or `None`.
    // The u8 cast re-narrows a loop index that started as a u8 (see the
    // audit:allow below) — it cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    fn best_fitting_gear(&self, cpus: u32, gear: GearId, budget: f64) -> Option<GearId> {
        let headroom = budget + CAP_EPS - self.ledger.power_now();
        (0..=gear.index())
            .rev()
            // audit:allow(N2): i ranges over 0..=index(), which is already a u8
            .map(|i| GearId(i as u8))
            .find(|&g| self.delta(cpus, g) <= headroom)
    }

    /// Finalises the run: integrates the ledger up to `end_s` (usually the
    /// makespan) and returns the power report.
    pub fn into_report(mut self, end_s: u64) -> PowerReport {
        self.ledger.advance(end_s);
        let energy = self.ledger.energy();
        let average = if end_s > 0 {
            self.ledger.integral() / end_s as f64
        } else {
            0.0
        };
        PowerReport {
            peak: self.ledger.peak(),
            budget: self.cap.budget(),
            cap: self.stats,
            sleep: self.idle.stats(),
            series: self.ledger.series().to_vec(),
            rails: self.ledger.rail_energies(),
            energy,
            average,
        }
    }
}

impl PowerHook for PowerCapPolicy {
    fn on_time(&mut self, now: Time) {
        let before = self.sink.as_ref().map(|_| self.sleep_snapshot());
        self.idle.advance(now.as_secs(), &mut self.ledger);
        if let Some(before) = before {
            self.emit_sleep_delta(now, before);
        }
    }

    fn admit_start(
        &mut self,
        now: Time,
        cpus: u32,
        gear: GearId,
        wq_others: usize,
        _head: bool,
    ) -> Option<GearId> {
        self.on_time(now);
        debug_assert!(
            gear.index() < self.gear_count,
            "gear outside the priced set"
        );
        self.last_admission = None;
        match self.cap {
            PowerCap::Uncapped => Some(gear),
            PowerCap::Hard { budget } => match self.best_fitting_gear(cpus, gear, budget) {
                Some(g) => {
                    if g != gear {
                        self.stats.downgears += 1;
                        self.last_admission = Some(LastAdmission {
                            downgear: true,
                            violation: false,
                        });
                    }
                    Some(g)
                }
                None => {
                    self.stats.deferrals += 1;
                    None
                }
            },
            PowerCap::Soft { budget, wq_escape } => {
                match self.best_fitting_gear(cpus, gear, budget) {
                    Some(g) => {
                        if g != gear {
                            self.stats.downgears += 1;
                            self.last_admission = Some(LastAdmission {
                                downgear: true,
                                violation: false,
                            });
                        }
                        Some(g)
                    }
                    None if wq_others > wq_escape || self.ledger.busy() == 0 => {
                        // Escape hatch: the queue is too deep to keep
                        // deferring — or the machine is idle, so no future
                        // completion could ever free budget. Admit at the
                        // most frugal gear and record the violation.
                        self.stats.soft_violations += 1;
                        self.last_admission = Some(LastAdmission {
                            downgear: false,
                            violation: true,
                        });
                        Some(GearId(0))
                    }
                    None => {
                        self.stats.deferrals += 1;
                        None
                    }
                }
            }
        }
    }

    fn admit_gear_change(&mut self, now: Time, cpus: u32, from: GearId, to: GearId) -> bool {
        self.on_time(now);
        let Some(budget) = self.cap.budget() else {
            return true;
        };
        let delta = cpus as f64 * (self.ledger.p_active(to) - self.ledger.p_active(from));
        if self.ledger.power_now() + delta <= budget + CAP_EPS {
            true
        } else {
            self.stats.boost_vetoes += 1;
            false
        }
    }

    fn admission_declined(&mut self) {
        // The engine did not honor the gear the last admit_start returned;
        // reverse what that admission counted.
        if let Some(a) = self.last_admission.take() {
            if a.downgear {
                self.stats.downgears -= 1;
            }
            if a.violation {
                self.stats.soft_violations -= 1;
            }
        }
    }

    fn on_job_start(&mut self, now: Time, cpus: u32, gear: GearId) {
        self.on_time(now);
        let t = now.as_secs();
        let before = self.sink.as_ref().map(|_| self.sleep_snapshot());
        self.idle.allocate(t, cpus, &mut self.ledger);
        if let Some(before) = before {
            // Waking sleeping processors to source the start is a ladder
            // transition too.
            self.emit_sleep_delta(now, before);
        }
        self.ledger.start(t, cpus, gear);
        self.last_admission = None;
    }

    fn on_job_finish(&mut self, now: Time, cpus: u32, gear: GearId) {
        self.on_time(now);
        let t = now.as_secs();
        self.ledger.finish(t, cpus, gear);
        self.idle.release(t, cpus);
    }

    fn on_gear_change(&mut self, now: Time, cpus: u32, from: GearId, to: GearId) {
        self.on_time(now);
        self.ledger.gear_change(now.as_secs(), cpus, from, to);
    }

    fn next_power_event(&self, now: Time) -> Option<Time> {
        // Only budgeted runs defer starts, so only they need retries; a
        // pending sleep transition is the one autonomous change that can
        // free budget.
        match self.cap {
            PowerCap::Uncapped => None,
            PowerCap::Hard { .. } | PowerCap::Soft { .. } => {
                self.idle.next_transition_due(now.as_secs()).map(Time)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;

    fn pm() -> bsld_power::PaperDvfs {
        bsld_power::PaperDvfs::paper(GearSet::paper())
    }

    fn policy(total: u32, cap: PowerCap) -> PowerCapPolicy {
        PowerCapPolicy::new(&pm(), total, cap, SleepConfig::none())
    }

    #[test]
    fn uncapped_admits_everything() {
        let mut p = policy(8, PowerCap::Uncapped);
        let g = p.admit_start(Time(0), 8, GearId(5), 0, true);
        assert_eq!(g, Some(GearId(5)));
        assert!(p.admit_gear_change(Time(0), 8, GearId(0), GearId(5)));
        assert_eq!(p.cap_stats(), CapStats::default());
    }

    #[test]
    fn hard_cap_downgears_then_defers() {
        let pm = pm();
        let total = 4u32;
        // Budget: all 4 at the lowest gear, plus nothing to spare.
        let budget = total as f64 * pm.p_active(GearId(0)) + 1e-6;
        let mut p = policy(total, PowerCap::Hard { budget });
        // A top-gear start of the whole machine must be down-geared to 0.
        let g = p.admit_start(Time(0), total, GearId(5), 0, true);
        assert_eq!(g, Some(GearId(0)));
        assert_eq!(p.cap_stats().downgears, 1);
        p.on_job_start(Time(0), total, GearId(0));
        assert!(p.power_now() <= budget + 1e-9);
        // Machine fully busy at the budget: any further start... cannot
        // happen (no processors), but a gear change up must be vetoed.
        assert!(!p.admit_gear_change(Time(10), total, GearId(0), GearId(1)));
        assert_eq!(p.cap_stats().boost_vetoes, 1);
    }

    #[test]
    fn hard_cap_defers_when_nothing_fits() {
        let pm = pm();
        // Budget below even one processor at the lowest gear on top of the
        // idle floor of the other processors.
        let budget = 4.0 * pm.p_idle() * 1.01;
        let mut p = policy(4, PowerCap::Hard { budget });
        let g = p.admit_start(Time(0), 1, GearId(0), 3, true);
        assert_eq!(g, None);
        assert_eq!(p.cap_stats().deferrals, 1);
    }

    #[test]
    fn soft_cap_escape_hatch_admits_frugal() {
        let pm = pm();
        let budget = 4.0 * pm.p_idle() * 1.01;
        let mut p = policy(
            4,
            PowerCap::Soft {
                budget,
                wq_escape: 2,
            },
        );
        // Nothing running: deferring could never succeed, so the hatch
        // opens regardless of queue depth.
        assert_eq!(
            p.admit_start(Time(0), 1, GearId(5), 0, true),
            Some(GearId(0))
        );
        assert_eq!(p.cap_stats().soft_violations, 1);
        p.on_job_start(Time(0), 1, GearId(0));
        // One job running, queue depth at the escape threshold: deferred.
        assert_eq!(p.admit_start(Time(1), 1, GearId(5), 2, true), None);
        assert_eq!(p.cap_stats().deferrals, 1);
        // Past the threshold: admitted at gear 0, violation recorded.
        assert_eq!(
            p.admit_start(Time(1), 1, GearId(5), 3, true),
            Some(GearId(0))
        );
        assert_eq!(p.cap_stats().soft_violations, 2);
    }

    #[test]
    fn report_summarises_run() {
        let mut p = policy(2, PowerCap::Uncapped);
        p.on_job_start(Time(0), 2, GearId(5));
        p.on_job_finish(Time(100), 2, GearId(5));
        let r = p.into_report(100);
        assert!(r.energy > 0.0);
        assert!(r.peak >= r.average && r.average > 0.0);
        assert_eq!(r.budget, None);
        assert_eq!(r.series.first().unwrap().0, 0);
    }

    #[test]
    fn admission_accounts_for_sleeping_sources() {
        let pm = pm();
        let mut p = PowerCapPolicy::new(
            &pm,
            4,
            PowerCap::Uncapped,
            crate::sleep::SleepConfig::paper_default(),
        );
        // Let everything fall into deep sleep, then start a job on all 4.
        p.on_time(Time(10_000));
        assert_eq!(p.idle_manager().sleeping(), 4);
        p.on_job_start(Time(10_000), 4, GearId(5));
        assert_eq!(p.idle_manager().sleeping(), 0);
        let s = p.idle_manager().stats();
        assert_eq!(s.wakes, 4);
        assert!((p.power_now() - 4.0 * pm.p_active(GearId(5))).abs() < 1e-9);
    }
}
