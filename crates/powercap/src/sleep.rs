//! Idle sleep-state management (SleepScale-style).
//!
//! Free processors descend a ladder of progressively deeper sleep states
//! as their idle time grows; the scheduler transparently wakes them
//! (shallowest — cheapest — first) when it needs processors. Waking
//! charges a per-processor wake-energy impulse and a wake-latency
//! statistic **exactly once per wake**. Wake latency is accounted as
//! energy/statistics only; it does not perturb the schedule, so capped and
//! uncapped runs remain comparable on identical job timelines.

use std::collections::VecDeque;

use crate::ledger::PowerLedger;

/// One sleep state of the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepState {
    /// A free processor enters this state after this much idle time, in
    /// seconds (measured from when it became free, not from the previous
    /// state).
    pub idle_timeout_s: u64,
    /// Seconds a wake from this state takes (statistic + energy charge).
    pub wake_latency_s: u64,
    /// Energy charged per processor woken from this state (normalised
    /// power units × seconds).
    pub wake_energy: f64,
    /// Power drawn in this state, as a fraction of `P_idle` in `[0, 1]`.
    pub power_fraction: f64,
}

/// The configured sleep ladder (possibly empty = sleeping disabled).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SleepConfig {
    states: Vec<SleepState>,
}

impl SleepConfig {
    /// No sleep states: free processors always draw full idle power.
    pub fn none() -> SleepConfig {
        SleepConfig { states: Vec::new() }
    }

    /// A single-state configuration.
    pub fn single(state: SleepState) -> SleepConfig {
        // audit:allow(R1): a one-state ladder is trivially valid
        SleepConfig::new(vec![state]).expect("one state is always a valid ladder")
    }

    /// A two-state default ladder: a shallow nap after 60 s idle (40 % of
    /// idle power, 1 s / 0.5 units to wake) and a deep sleep after 600 s
    /// (5 % of idle power, 10 s / 5 units to wake). Loosely follows the
    /// C-state-style latency/power trade-off SleepScale manages.
    pub fn paper_default() -> SleepConfig {
        SleepConfig::new(vec![
            SleepState {
                idle_timeout_s: 60,
                wake_latency_s: 1,
                wake_energy: 0.5,
                power_fraction: 0.4,
            },
            SleepState {
                idle_timeout_s: 600,
                wake_latency_s: 10,
                wake_energy: 5.0,
                power_fraction: 0.05,
            },
        ])
        // audit:allow(R1): fixed default ladder with strictly increasing timeouts
        .expect("default ladder is valid")
    }

    /// Validates and wraps a ladder: timeouts strictly increasing, power
    /// fractions in `[0, 1]` and non-increasing with depth, wake costs
    /// non-negative.
    pub fn new(states: Vec<SleepState>) -> Result<SleepConfig, String> {
        for s in &states {
            if !(0.0..=1.0).contains(&s.power_fraction) {
                return Err(format!("power fraction {} out of [0, 1]", s.power_fraction));
            }
            if s.wake_energy < 0.0 || !s.wake_energy.is_finite() {
                return Err(format!(
                    "wake energy {} must be finite and >= 0",
                    s.wake_energy
                ));
            }
        }
        for w in states.windows(2) {
            if w[1].idle_timeout_s <= w[0].idle_timeout_s {
                return Err("sleep timeouts must be strictly increasing".into());
            }
            if w[1].power_fraction > w[0].power_fraction {
                return Err("deeper sleep states must not draw more power".into());
            }
        }
        Ok(SleepConfig { states })
    }

    /// The ladder, shallowest first.
    pub fn states(&self) -> &[SleepState] {
        &self.states
    }

    /// Whether any sleeping can happen.
    pub fn is_enabled(&self) -> bool {
        !self.states.is_empty()
    }
}

/// Counters the idle manager accumulates over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SleepStats {
    /// Processor transitions into the first sleep state.
    pub sleeps: u64,
    /// Processor wakes (each charged exactly once).
    pub wakes: u64,
    /// Total wake energy charged, normalised units.
    pub wake_energy: f64,
    /// Total wake latency accumulated, processor-seconds.
    pub wake_latency_s: u64,
}

/// A group of processors that became free at the same instant and have
/// descended to the same ladder level.
#[derive(Debug, Clone, Copy)]
struct Cohort {
    since: u64,
    count: u32,
    /// `None` = awake-idle; `Some(i)` = in `states[i]`.
    level: Option<usize>,
}

/// Tracks every free processor's idle age and sleep level, count-based.
///
/// The scheduler's processor pool is count-based for power purposes
/// (processors are interchangeable wattage-wise), so the manager tracks
/// *cohorts* — groups freed at the same instant — instead of individual
/// processor identities.
#[derive(Debug, Clone)]
pub struct IdleManager {
    cfg: SleepConfig,
    p_idle: f64,
    cohorts: VecDeque<Cohort>,
    stats: SleepStats,
}

impl IdleManager {
    /// A manager for a machine of `total` processors, all free (and awake)
    /// at time 0, drawing `p_idle` each while awake-idle.
    pub fn new(cfg: SleepConfig, total: u32, p_idle: f64) -> IdleManager {
        let mut cohorts = VecDeque::new();
        if total > 0 {
            cohorts.push_back(Cohort {
                since: 0,
                count: total,
                level: None,
            });
        }
        IdleManager {
            cfg,
            p_idle,
            cohorts,
            stats: SleepStats::default(),
        }
    }

    /// Accumulated sleep/wake counters.
    pub fn stats(&self) -> SleepStats {
        self.stats
    }

    /// Free processors currently awake (drawing full idle power).
    pub fn awake_idle(&self) -> u32 {
        self.cohorts
            .iter()
            .filter(|c| c.level.is_none())
            .map(|c| c.count)
            .sum()
    }

    /// Free processors currently in any sleep state.
    pub fn sleeping(&self) -> u32 {
        self.cohorts
            .iter()
            .filter(|c| c.level.is_some())
            .map(|c| c.count)
            .sum()
    }

    /// All free processors tracked (awake + sleeping).
    pub fn total_free(&self) -> u32 {
        self.cohorts.iter().map(|c| c.count).sum()
    }

    fn p_state(&self, level: usize) -> f64 {
        self.cfg.states()[level].power_fraction * self.p_idle
    }

    /// Applies every sleep transition due by `t`, in chronological order,
    /// recording each at its exact transition time in `ledger`.
    pub fn advance(&mut self, t: u64, ledger: &mut PowerLedger) {
        if !self.cfg.is_enabled() {
            return;
        }
        loop {
            // The globally earliest due transition across cohorts keeps
            // the ledger's time order exact.
            let mut best: Option<(usize, usize, u64)> = None; // (cohort, next_level, due)
            for (i, c) in self.cohorts.iter().enumerate() {
                let next = c.level.map_or(0, |l| l + 1);
                if next >= self.cfg.states().len() {
                    continue;
                }
                let due = c
                    .since
                    .saturating_add(self.cfg.states()[next].idle_timeout_s);
                if due <= t && best.is_none_or(|(_, _, d)| due < d) {
                    best = Some((i, next, due));
                }
            }
            let Some((i, next, due)) = best else {
                break;
            };
            let count = self.cohorts[i].count;
            match self.cohorts[i].level {
                None => {
                    ledger.sleep_enter(due, count, self.p_state(next));
                    // audit:allow(N2): u32 -> u64 is a lossless widening
                    self.stats.sleeps += count as u64;
                }
                Some(prev) => {
                    ledger.sleep_deepen(due, count, self.p_state(prev), self.p_state(next));
                }
            }
            self.cohorts[i].level = Some(next);
        }
    }

    /// The earliest instant strictly after `now` at which some cohort is
    /// due to enter or deepen a sleep state, or `None` when every free
    /// processor has already reached the deepest state (or sleeping is
    /// disabled).
    pub fn next_transition_due(&self, now: u64) -> Option<u64> {
        let states = self.cfg.states();
        self.cohorts
            .iter()
            .filter_map(|c| {
                let next = c.level.map_or(0, |l| l + 1);
                states
                    .get(next)
                    .map(|s| c.since.saturating_add(s.idle_timeout_s))
            })
            .filter(|&due| due > now)
            .min()
    }

    /// `n` processors were released back to the free pool at `t`.
    pub fn release(&mut self, t: u64, n: u32) {
        if n == 0 {
            return;
        }
        match self.cohorts.back_mut() {
            Some(c) if c.since == t && c.level.is_none() => c.count += n,
            _ => self.cohorts.push_back(Cohort {
                since: t,
                count: n,
                level: None,
            }),
        }
    }

    /// Draw currently attributable to the `n` processors [`Self::allocate`]
    /// would take at this instant: awake-idle first (most recently freed
    /// first), then sleeping shallowest-first. Returns
    /// `(from_awake, sourced_sleep_power)`.
    pub fn preview_sources(&self, n: u32) -> (u32, f64) {
        let awake = self.awake_idle().min(n);
        let mut need = n - awake;
        let mut sleep_power = 0.0;
        let mut level = 0;
        while need > 0 && level < self.cfg.states().len() {
            let at_level: u32 = self
                .cohorts
                .iter()
                .filter(|c| c.level == Some(level))
                .map(|c| c.count)
                .sum();
            let take = at_level.min(need);
            sleep_power += take as f64 * self.p_state(level);
            need -= take;
            level += 1;
        }
        debug_assert_eq!(need, 0, "preview of more processors than are free");
        (awake, sleep_power)
    }

    /// Takes `n` free processors for a job starting at `t`: awake-idle
    /// first (most recently freed first, so long-idle processors keep
    /// progressing toward sleep), then sleeping shallowest-first. Each
    /// woken processor charges its state's wake energy and latency exactly
    /// once, through `ledger` and [`SleepStats`].
    pub fn allocate(&mut self, t: u64, n: u32, ledger: &mut PowerLedger) {
        debug_assert!(
            self.total_free() >= n,
            "allocating more processors than are free"
        );
        let mut need = n;
        // Awake-idle, newest cohorts first.
        let mut i = self.cohorts.len();
        while need > 0 && i > 0 {
            i -= 1;
            if self.cohorts[i].level.is_some() {
                continue;
            }
            let take = self.cohorts[i].count.min(need);
            self.cohorts[i].count -= take;
            need -= take;
        }
        // Sleeping, shallowest level first: the cheapest wakes.
        let mut level = 0;
        while need > 0 && level < self.cfg.states().len() {
            let state = self.cfg.states()[level];
            let p_state = self.p_state(level);
            for c in self.cohorts.iter_mut() {
                if need == 0 {
                    break;
                }
                if c.level != Some(level) {
                    continue;
                }
                let take = c.count.min(need);
                c.count -= take;
                need -= take;
                // audit:allow(N2): u32 -> u64 is a lossless widening
                self.stats.wakes += take as u64;
                self.stats.wake_energy += take as f64 * state.wake_energy;
                // audit:allow(N2): u32 -> u64 is a lossless widening
                self.stats.wake_latency_s += take as u64 * state.wake_latency_s;
                ledger.wake(t, take, p_state, take as f64 * state.wake_energy);
            }
            level += 1;
        }
        debug_assert_eq!(
            need, 0,
            "engine allocated processors the manager does not track"
        );
        self.cohorts.retain(|c| c.count > 0);
    }

    /// Internal-consistency check: the tracked free count must equal
    /// `expected_free`, and no cohort may sit past the deepest state.
    pub fn check_invariants(&self, expected_free: u32) -> Result<(), String> {
        let free = self.total_free();
        if free != expected_free {
            return Err(format!(
                "manager tracks {free} free processors, pool says {expected_free}"
            ));
        }
        for c in &self.cohorts {
            if let Some(l) = c.level {
                if l >= self.cfg.states().len() {
                    return Err(format!("cohort at nonexistent sleep level {l}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsld_cluster::GearSet;
    use bsld_power::PaperDvfs;

    fn pm() -> PaperDvfs {
        PaperDvfs::paper(GearSet::paper())
    }

    fn mgr(total: u32) -> (IdleManager, PowerLedger) {
        let pm = pm();
        let ledger = PowerLedger::new(&pm, total);
        (
            IdleManager::new(SleepConfig::paper_default(), total, pm.p_idle()),
            ledger,
        )
    }

    #[test]
    fn config_validation() {
        assert!(SleepConfig::new(vec![]).is_ok());
        let bad_frac = SleepState {
            idle_timeout_s: 1,
            wake_latency_s: 0,
            wake_energy: 0.0,
            power_fraction: 1.5,
        };
        assert!(SleepConfig::new(vec![bad_frac]).is_err());
        let a = SleepState {
            idle_timeout_s: 10,
            wake_latency_s: 1,
            wake_energy: 0.1,
            power_fraction: 0.5,
        };
        let same_timeout = SleepState {
            idle_timeout_s: 10,
            ..a
        };
        assert!(SleepConfig::new(vec![a, same_timeout]).is_err());
        let deeper_hotter = SleepState {
            idle_timeout_s: 20,
            power_fraction: 0.9,
            ..a
        };
        assert!(SleepConfig::new(vec![a, deeper_hotter]).is_err());
    }

    #[test]
    fn idle_processors_descend_the_ladder() {
        let (mut m, mut l) = mgr(4);
        m.advance(59, &mut l);
        assert_eq!(m.sleeping(), 0, "before the first timeout");
        m.advance(60, &mut l);
        assert_eq!(m.sleeping(), 4, "shallow sleep at 60 s idle");
        m.advance(600, &mut l);
        assert_eq!(m.sleeping(), 4);
        // Deep state draws 5% of idle.
        let expected = 4.0 * 0.05 * l.p_idle();
        assert!((l.power_now() - expected).abs() < 1e-9);
        m.check_invariants(4).unwrap();
    }

    #[test]
    fn transitions_recorded_at_exact_times() {
        let (mut m, mut l) = mgr(2);
        // Jump straight past both timeouts: the ledger must still see the
        // transitions at t=60 and t=600, not at the observation time.
        m.advance(10_000, &mut l);
        let times: Vec<u64> = l.series().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0, 60, 600]);
    }

    #[test]
    fn allocate_prefers_awake_then_shallow() {
        let (mut m, mut l) = mgr(8);
        m.allocate(0, 2, &mut l); // two processors go busy before any sleep
        m.advance(60, &mut l); // the remaining six fall shallow-asleep
        m.release(70, 2); // the two come back, awake
        m.allocate(80, 3, &mut l);
        // 2 awake + 1 woken from shallow sleep.
        assert_eq!(m.stats().wakes, 1);
        assert_eq!(m.total_free(), 5);
        m.check_invariants(5).unwrap();
        let s = m.stats();
        assert!((s.wake_energy - 0.5).abs() < 1e-12);
        assert_eq!(s.wake_latency_s, 1);
    }

    #[test]
    fn wake_charged_exactly_once_per_wake() {
        let (mut m, mut l) = mgr(4);
        m.advance(700, &mut l); // deep sleep
        m.allocate(700, 4, &mut l);
        let s = m.stats();
        assert_eq!(s.wakes, 4);
        assert!((s.wake_energy - 4.0 * 5.0).abs() < 1e-9);
        // Release and re-allocate immediately: no new wakes.
        m.release(800, 4);
        m.allocate(810, 4, &mut l);
        assert_eq!(
            m.stats().wakes,
            4,
            "awake processors must not be re-charged"
        );
    }

    #[test]
    fn preview_matches_allocate_sources() {
        let (mut m, mut l) = mgr(6);
        m.advance(60, &mut l); // 6 shallow sleepers
        m.release(100, 2);
        let (awake, sleep_power) = m.preview_sources(5);
        assert_eq!(awake, 2);
        let expected = 3.0 * 0.4 * l.p_idle();
        assert!((sleep_power - expected).abs() < 1e-9);
    }

    #[test]
    fn disabled_config_never_sleeps() {
        let pm = pm();
        let mut l = PowerLedger::new(&pm, 4);
        let mut m = IdleManager::new(SleepConfig::none(), 4, pm.p_idle());
        m.advance(1_000_000, &mut l);
        assert_eq!(m.sleeping(), 0);
        assert_eq!(m.awake_idle(), 4);
    }
}
