//! Cluster-level power management: the power ledger, idle sleep states and
//! power-cap enforcement.
//!
//! The paper computes CPU energy *post hoc* from completed job phases
//! (`bsld-power`'s [`bsld_power::EnergyAccount`]); nothing in the seed
//! system could observe or act on instantaneous cluster draw. This crate
//! makes cluster power a first-class simulation signal:
//!
//! * [`PowerLedger`] — running cluster draw (active gears ×
//!   `P_active(gear)` + idle/sleep draw per free processor), updated on
//!   every start/completion/gear-change/sleep transition, exposed as a
//!   step-function time series with an exact energy integral;
//! * [`IdleManager`] / [`SleepConfig`] — SleepScale-style idle sleep
//!   states: free processors descend a ladder of progressively deeper
//!   states after configurable idle timeouts, and are woken (shallowest
//!   first, wake energy and latency charged exactly once per wake) when
//!   the scheduler needs them;
//! * [`PowerCapPolicy`] — a [`bsld_sched::PowerHook`] implementation that
//!   enforces a [`PowerCap`] on the schedule: a **hard** cap vetoes or
//!   down-gears any start/boost that would push draw over the budget; a
//!   **soft** cap does the same but admits over-budget starts (recording
//!   the violation) once the wait queue grows past an escape threshold,
//!   mirroring the paper's `WQ_threshold` gate.
//!
//! The run-facing integration lives in `bsld-core`
//! (`Simulator::run_power_capped`) and the cap-sweep experiment in
//! `bsld-core`'s experiment harness.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod cap;
pub mod ledger;
pub mod sleep;

pub use cap::{CapStats, PowerCap, PowerCapPolicy, PowerReport};
pub use ledger::{PowerLedger, RailEnergy};
pub use sleep::{IdleManager, SleepConfig, SleepState, SleepStats};
