//! A minimal token stream over *masked* source (see [`crate::mask`]).
//!
//! The audit rules need just enough lexical structure to avoid the classic
//! grep failure modes: distinguishing the identifier `unwrap` from
//! `unwrap_or`, seeing that `==` sits next to a float literal, or that
//! `as` is followed by `u32`. Full parsing (types, name resolution) is out
//! of scope by design — the analyzer must build with zero dependencies in
//! an offline workspace, so no `syn`.

/// One token of masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal; `float` covers `1.0`, `1e3`, `2.`, `1f64`.
    Num {
        /// Whether the literal is a float.
        float: bool,
    },
    /// Single punctuation char.
    P(char),
    /// Two-char operator (`==`, `!=`, `::`, `..`, `->`, `=>`, …).
    P2(&'static str),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

const TWO_CHAR: [&str; 12] = [
    "==", "!=", "::", "->", "=>", "..", "<=", ">=", "&&", "||", "<<", ">>",
];

/// Tokenizes masked source. Blanked regions (comments, literals) produce no
/// tokens; line numbers refer to the original file.
pub fn lex(masked: &str) -> Vec<SpannedTok> {
    let chars: Vec<char> = masked.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(SpannedTok {
                tok: Tok::Ident(chars[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut float = false;
            // Radix-prefixed literals (0x/0b/0o) are always integers and
            // their bodies may contain `e`/`f` as digits — consume whole.
            let radix_prefixed =
                c == '0' && matches!(chars.get(i + 1), Some('x') | Some('b') | Some('o'));
            // Integer part (also consumes suffixes and `_`).
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                // An exponent inside a decimal literal marks a float; the
                // sign is consumed here too.
                if !radix_prefixed
                    && (chars[i] == 'e' || chars[i] == 'E')
                    && chars
                        .get(i + 1)
                        .is_some_and(|n| n.is_ascii_digit() || *n == '+' || *n == '-')
                {
                    float = true;
                    i += 2;
                    continue;
                }
                if !radix_prefixed && chars[i] == 'f' {
                    // `1f64` / `2.5f32` suffix.
                    float = true;
                }
                i += 1;
            }
            if radix_prefixed {
                toks.push(SpannedTok {
                    tok: Tok::Num { float: false },
                    line,
                });
                continue;
            }
            // Fractional part — but not `..` (range) and not a method call
            // on an integer literal (`1.max(2)`).
            if i < chars.len()
                && chars[i] == '.'
                && chars.get(i + 1) != Some(&'.')
                && !chars
                    .get(i + 1)
                    .is_some_and(|n| n.is_alphabetic() || *n == '_')
            {
                float = true;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    if chars[i] == 'f' {
                        float = true;
                    }
                    if (chars[i] == 'e' || chars[i] == 'E')
                        && chars
                            .get(i + 1)
                            .is_some_and(|n| n.is_ascii_digit() || *n == '+' || *n == '-')
                    {
                        i += 1;
                    }
                    i += 1;
                }
            }
            toks.push(SpannedTok {
                tok: Tok::Num { float },
                line,
            });
            continue;
        }
        // Two-char operators.
        if let Some(n) = chars.get(i + 1) {
            let pair: String = [c, *n].iter().collect();
            if let Some(op) = TWO_CHAR.iter().find(|t| **t == pair) {
                toks.push(SpannedTok {
                    tok: Tok::P2(op),
                    line,
                });
                i += 2;
                continue;
            }
        }
        toks.push(SpannedTok {
            tok: Tok::P(c),
            line,
        });
        i += 1;
    }
    toks
}

impl Tok {
    /// Whether the token is this exact identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == s)
    }

    /// Whether the token is a float literal.
    pub fn is_float(&self) -> bool {
        matches!(self, Tok::Num { float: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_methods() {
        let t = kinds("map.unwrap_or(x)");
        assert!(t.contains(&Tok::Ident("unwrap_or".into())));
        assert!(!t.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn float_vs_int_literals() {
        assert!(kinds("1.0")[0].is_float());
        assert!(kinds("2.")[0].is_float());
        assert!(kinds("1e-3")[0].is_float());
        assert!(kinds("3f64")[0].is_float());
        assert!(!kinds("42")[0].is_float());
        assert!(!kinds("0x1F")[0].is_float());
        assert!(!kinds("0x1E3")[0].is_float());
        assert!(!kinds("1_000")[0].is_float());
    }

    #[test]
    fn range_is_not_a_float() {
        let t = kinds("0..10");
        assert_eq!(
            t,
            vec![
                Tok::Num { float: false },
                Tok::P2(".."),
                Tok::Num { float: false }
            ]
        );
    }

    #[test]
    fn method_on_int_literal_is_not_a_float() {
        let t = kinds("1.max(2)");
        assert_eq!(t[0], Tok::Num { float: false });
        assert!(t.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn two_char_ops() {
        let t = kinds("a == b != c :: d");
        assert!(t.contains(&Tok::P2("==")));
        assert!(t.contains(&Tok::P2("!=")));
        assert!(t.contains(&Tok::P2("::")));
    }

    #[test]
    fn line_numbers() {
        let t = lex("a\nb\n\nc");
        let lines: Vec<usize> = t.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
