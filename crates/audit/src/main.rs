//! Standalone `bsld-audit` binary — see [`bsld_audit::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(bsld_audit::run_cli(&args));
}
