//! `bsld-audit` — static analysis enforcing the workspace's determinism
//! and numeric-safety contract.
//!
//! # Why a bespoke analyzer
//!
//! This reproduction's headline claim is *bit-reproducibility*: the same
//! campaign spec produces byte-identical manifests, CSVs and JSON reports
//! across runs, shardings and resumes. That property is carried by
//! conventions no compiler checks: never iterate a hash collection where
//! order can reach an artifact, never read the wall clock in simulation
//! code, never compare floats exactly, never truncate an energy ledger.
//! Each convention has been broken silently at least once in this family
//! of codebases; each break produces results that look plausible and are
//! wrong, which is the worst failure mode a paper reproduction can have.
//!
//! `clippy` covers some of this (`float_cmp`, `unwrap_used` — both enabled
//! in the workspace lints), but not the project-specific rules: clippy
//! cannot know that `crates/core/src/campaign.rs` feeds persisted
//! artifacts while `crates/bench` may do whatever it likes. So the audit
//! is a small, dependency-free, lexer-level analyzer — the offline build
//! environment has no `syn`, and the rules below need token streams, not
//! type information.
//!
//! # The rules
//!
//! See [`Rule`] for the per-rule failure scenarios. In short:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `D1` | determinism-critical crates | iterating `HashMap`/`HashSet` |
//! | `D2` | libraries outside `par`/`bench` | `Instant::now`, `SystemTime`, `thread_rng`, `std::env` reads |
//! | `N1` | all libraries | `==`/`!=` against float literals |
//! | `N2` | ledger/identity files | lossy `as` casts |
//! | `R1` | all libraries (non-test) | `.unwrap()`, `.expect()`, `panic!` |
//! | `A0` | everywhere | `audit:allow` without justification |
//!
//! # Escapes
//!
//! A violation that is genuinely fine carries a same-line (or
//! immediately-preceding comment line) escape **with a justification**:
//!
//! ```text
//! let nonce = std::time::SystemTime::now() // audit:allow(D2): tmp-file uniqueness, not results
//! ```
//!
//! An escape without the `: reason` tail is itself a violation (`A0`);
//! an escape that matches nothing is reported as stale.
//!
//! # Honest limitations
//!
//! The analyzer is flow-insensitive and per-file: a `HashMap` returned
//! across a module boundary and iterated elsewhere is invisible to `D1`.
//! That gap is closed *dynamically* — the `determinism_rerun` integration
//! test byte-diffs a campaign run against a re-run and a 2-shard
//! worker/merge execution, which any surviving hash-order leak perturbs.
//! Static pass + dynamic diff together are the contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
pub mod lex;
pub mod mask;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::AuditReport;
pub use rules::{audit_source, classify, FileAudit, FileKind, Rule, Violation};
pub use walk::{audit_workspace, collect_files, find_root};

/// Runs the audit as a CLI: parses `args` (everything after the program
/// name / subcommand), runs the workspace audit and prints the report.
/// Returns the intended process exit code (0 pass, 1 violations, 2 usage
/// or I/O error).
pub fn run_cli(args: &[String]) -> i32 {
    let mut json = false;
    let mut root: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(r) => root = Some(r.into()),
                None => {
                    eprintln!("audit: --root needs a directory");
                    return 2;
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("audit: unknown argument {other:?}\n{USAGE}");
                return 2;
            }
        }
    }
    let root = root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)));
    let Some(root) = root else {
        eprintln!("audit: cannot find a workspace root (Cargo.toml + crates/); use --root");
        return 2;
    };
    match audit_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.ok() {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("audit: {e}");
            2
        }
    }
}

/// CLI usage text, shared by the standalone binary and the `bsld-repro
/// audit` subcommand.
pub const USAGE: &str = "\
usage: bsld-audit [--json] [--root DIR]

Statically audits the workspace's determinism & numeric-safety contract.
  --json       emit the machine-readable JSON report instead of text
  --root DIR   workspace root (default: walk up from the current dir)

exit status: 0 clean, 1 violations found, 2 usage or I/O error";
