//! Aggregated audit results: deterministic text and JSON renderings.
//!
//! The JSON report is machine-readable so CI can archive it as an artifact
//! and diff it across commits; the text rendering is what a developer sees
//! on a failing `bsld-repro audit`. Both orderings are fully deterministic
//! (sorted paths, stable per-file rule order) — the audit tool is itself
//! subject to the determinism contract it enforces.

use crate::rules::{Rule, Violation};

/// The whole-workspace audit result.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Files analysed, in sorted relative-path order.
    pub files_scanned: Vec<String>,
    /// Violations not covered by a justified allow — any entry fails the
    /// audit.
    pub violations: Vec<Violation>,
    /// Would-be violations suppressed by justified `audit:allow`s.
    pub suppressed: Vec<Violation>,
    /// Justified allows that matched nothing: `(file, line, rule)`.
    /// Reported so stale escapes get cleaned up, but non-fatal.
    pub unused_allows: Vec<(String, usize, Rule)>,
}

impl AuditReport {
    /// Whether the audit passes (no unallowed violations).
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule violation counts, rule order.
    pub fn counts(&self) -> Vec<(Rule, usize)> {
        let mut counts: Vec<(Rule, usize)> = Vec::new();
        for v in &self.violations {
            match counts.iter_mut().find(|(r, _)| *r == v.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((v.rule, 1)),
            }
        }
        counts.sort_by_key(|(r, _)| *r);
        counts
    }

    /// Human-readable rendering (what a failing CI step prints).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{}:{}: [{}] {}\n    {}",
                v.file,
                v.line,
                v.rule.name(),
                v.message,
                v.snippet
            );
        }
        for (file, line, rule) in &self.unused_allows {
            let _ = writeln!(
                out,
                "{file}:{line}: note: unused audit:allow({}) — remove the stale escape",
                rule.name()
            );
        }
        let _ = writeln!(
            out,
            "audit: {} file(s), {} violation(s), {} suppressed by audit:allow, {} unused allow(s)",
            self.files_scanned.len(),
            self.violations.len(),
            self.suppressed.len(),
            self.unused_allows.len()
        );
        if self.ok() {
            let _ = writeln!(out, "audit: PASS");
        } else {
            for (rule, n) in self.counts() {
                let _ = writeln!(out, "audit:   {}: {n}", rule.name());
            }
            let _ = writeln!(out, "audit: FAIL");
        }
        out
    }

    /// Machine-readable JSON (stable key order, sorted entries).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"ok\": {},", self.ok());
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned.len());
        out.push_str("  \"counts\": {");
        let counts = self.counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {n}", rule.name());
        }
        out.push_str("},\n");
        out.push_str("  \"violations\": [\n");
        push_violations(&mut out, &self.violations);
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        push_violations(&mut out, &self.suppressed);
        out.push_str("  ],\n");
        out.push_str("  \"unused_allows\": [\n");
        for (i, (file, line, rule)) in self.unused_allows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"file\": {}, \"line\": {line}, \"rule\": \"{}\"}}",
                json_str(file),
                rule.name()
            );
            out.push_str(if i + 1 < self.unused_allows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn push_violations(out: &mut String, vs: &[Violation]) {
    use std::fmt::Write as _;
    for (i, v) in vs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"file\": {}, \"line\": {}, \"rule\": \"{}\", \"message\": {}, \"snippet\": {}}}",
            json_str(&v.file),
            v.line,
            v.rule.name(),
            json_str(&v.message),
            json_str(&v.snippet)
        );
        out.push_str(if i + 1 < vs.len() { ",\n" } else { "\n" });
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: usize, rule: Rule) -> Violation {
        Violation {
            file: file.into(),
            line,
            rule,
            message: "msg with \"quotes\"".into(),
            snippet: "let x = 1;".into(),
        }
    }

    #[test]
    fn pass_and_fail_render() {
        let mut r = AuditReport::default();
        r.files_scanned.push("crates/a/src/lib.rs".into());
        assert!(r.ok());
        assert!(r.render_text().contains("PASS"));
        r.violations.push(v("crates/a/src/lib.rs", 3, Rule::R1));
        assert!(!r.ok());
        let text = r.render_text();
        assert!(text.contains("FAIL"));
        assert!(text.contains("crates/a/src/lib.rs:3"));
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let mut r = AuditReport::default();
        r.violations.push(v("a.rs", 1, Rule::N1));
        r.violations.push(v("a.rs", 2, Rule::N1));
        let j = r.to_json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"ok\": false"));
        assert!(j.contains("\"N1\": 2"));
        // Deterministic: same input, same bytes.
        assert_eq!(j, r.to_json());
    }
}
