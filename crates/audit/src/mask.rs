//! Source masking: the first pass of every audit.
//!
//! Rust source is full of places where rule text can appear without being
//! code — `"HashMap.iter()"` inside a string, `// call .unwrap() here` in a
//! comment, `r#"panic!"#` in a raw string. A naive line scanner would flag
//! all of them. [`mask`] rewrites the source into an equal-length shadow
//! where every comment and every literal's contents become spaces, while
//! newlines survive, so downstream passes see only real code and byte
//! offsets/line numbers still map 1:1 onto the original file.
//!
//! Comment *text* is not discarded: the masker collects it per line, because
//! the `audit:allow(...)` escape hatch lives in comments.

/// The masked shadow of one source file.
#[derive(Debug)]
pub struct Masked {
    /// Same byte length as the input; comments and literal contents are
    /// spaces, newlines are preserved.
    pub text: String,
    /// `(1-based line, comment text, is doc comment)` for every comment
    /// line encountered — one entry per line of a multi-line block
    /// comment. Doc comments (`///`, `//!`, `/**`, `/*!`) are flagged:
    /// they are rendered documentation, so `audit:allow` directives are
    /// not honoured there (mentioning the syntax in docs must not create
    /// a live escape).
    pub comments: Vec<(usize, String, bool)>,
}

/// Masks comments, string literals, raw strings, byte strings and char
/// literals out of `src`. Lifetimes (`'a`) are left untouched.
pub fn mask(src: &str) -> Masked {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comments: Vec<(usize, String, bool)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Appends one masked char, tracking line numbers.
    macro_rules! blank {
        ($c:expr) => {
            if $c == '\n' {
                out.push('\n');
                line += 1;
            } else {
                out.push(' ');
            }
        };
    }
    macro_rules! keep {
        ($c:expr) => {
            if $c == '\n' {
                out.push('\n');
                line += 1;
            } else {
                out.push($c);
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            let start = i;
            let doc = matches!(bytes.get(i + 2), Some('/') | Some('!'))
                // `////…` separators are plain comments, not docs.
                && bytes.get(i + 3) != Some(&'/');
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            comments.push((line, text, doc));
            for _ in start..i {
                out.push(' ');
            }
            continue;
        }

        // Block comment (nested).
        if c == '/' && next == Some('*') {
            let doc =
                matches!(bytes.get(i + 2), Some('*') | Some('!')) && bytes.get(i + 3) != Some(&'/');
            let mut depth = 1usize;
            let mut seg_start_line = line;
            let mut seg: String = String::new();
            blank!(bytes[i]);
            blank!(bytes[i + 1]);
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    seg.push_str("/*");
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else {
                    if bytes[i] == '\n' {
                        comments.push((seg_start_line, std::mem::take(&mut seg), doc));
                        seg_start_line = line + 1;
                    } else {
                        seg.push(bytes[i]);
                    }
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            comments.push((seg_start_line, seg, doc));
            continue;
        }

        // Raw / byte / plain string starts. Detect r"..", r#".."#, b"..",
        // br#".."# and the plain `"`.
        if let Some((prefix_len, hashes)) = raw_string_start(&bytes, i) {
            for _ in 0..prefix_len {
                blank!(bytes[i]);
                i += 1;
            }
            // Contents end at `"` followed by `hashes` #s.
            while i < bytes.len() {
                if bytes[i] == '"' && has_hashes(&bytes, i + 1, hashes) {
                    for _ in 0..(1 + hashes) {
                        blank!(bytes[i]);
                        i += 1;
                    }
                    break;
                }
                blank!(bytes[i]);
                i += 1;
            }
            continue;
        }
        if c == '"' || (c == 'b' && next == Some('"') && !prev_is_ident(&bytes, i)) {
            if c == 'b' {
                blank!(bytes[i]);
                i += 1;
            }
            blank!(bytes[i]);
            i += 1;
            while i < bytes.len() {
                if bytes[i] == '\\' && i + 1 < bytes.len() {
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                    continue;
                }
                let done = bytes[i] == '"';
                blank!(bytes[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' || (c == 'b' && next == Some('\'') && !prev_is_ident(&bytes, i)) {
            let q = if c == 'b' { i + 1 } else { i };
            if let Some(end) = char_literal_end(&bytes, q) {
                while i <= end {
                    blank!(bytes[i]);
                    i += 1;
                }
                continue;
            }
            // A lifetime — fall through and keep it.
        }

        // Skip over identifiers wholesale so a stray `r` or `b` inside one
        // (e.g. `number"`?) can't be misread as a literal prefix.
        if c.is_alphanumeric() || c == '_' {
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                keep!(bytes[i]);
                i += 1;
            }
            continue;
        }

        keep!(c);
        i += 1;
    }

    Masked {
        text: out,
        comments,
    }
}

/// If position `i` starts a raw-string opener (`r"`, `r#"`, `br##"` …),
/// returns `(opener length, number of #s)`.
fn raw_string_start(bytes: &[char], i: usize) -> Option<(usize, usize)> {
    if prev_is_ident(bytes, i) {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

fn has_hashes(bytes: &[char], from: usize, n: usize) -> bool {
    (0..n).all(|k| bytes.get(from + k) == Some(&'#'))
}

/// Whether the char before `i` continues an identifier (so `i` cannot start
/// a literal prefix like `r"` or `b'`).
fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If `q` holds the opening quote of a char literal, returns the index of
/// the closing quote; `None` means it is a lifetime.
fn char_literal_end(bytes: &[char], q: usize) -> Option<usize> {
    let first = *bytes.get(q + 1)?;
    if first == '\\' {
        // Escape: scan to the next unescaped quote (handles '\n', '\u{..}').
        let mut j = q + 2;
        while j < bytes.len() {
            if bytes[j] == '\'' {
                return Some(j);
            }
            if bytes[j] == '\n' {
                return None;
            }
            j += 1;
        }
        return None;
    }
    if first == '\'' {
        return None; // `''` — not valid; treat as two lifetimes.
    }
    // `'x'` is a char literal; `'ident` (no closing quote right after one
    // char) is a lifetime.
    if bytes.get(q + 2) == Some(&'\'') {
        Some(q + 2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        mask(src).text
    }

    #[test]
    fn preserves_length_and_newlines() {
        let src = "let x = \"ab\\\"c\"; // trailing\nfn f() {}\n";
        let m = masked(src);
        assert_eq!(m.chars().count(), src.chars().count());
        assert_eq!(
            m.matches('\n').count(),
            src.matches('\n').count(),
            "newlines must survive masking"
        );
    }

    #[test]
    fn blanks_strings_and_line_comments() {
        let m = masked("let s = \"HashMap.iter()\"; // .unwrap() here\n");
        assert!(!m.contains("iter"));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let s ="));
    }

    #[test]
    fn blanks_raw_and_byte_strings() {
        let m = masked("let a = r#\"panic!(\"x\")\"#; let b = b\"thread_rng\";\n");
        assert!(!m.contains("panic"));
        assert!(!m.contains("thread_rng"));
    }

    #[test]
    fn nested_block_comments() {
        let m = masked("/* a /* nested .unwrap() */ b */ fn f() {}\n");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("fn f"));
    }

    #[test]
    fn char_literals_blanked_lifetimes_kept() {
        let m = masked("fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; }\n");
        assert!(m.contains("'a>"), "lifetime must survive: {m}");
        assert!(!m.contains("'x'"));
    }

    #[test]
    fn collects_comment_text_with_lines() {
        let m = mask("fn f() {}\n// audit:allow(R1): fine\nlet x = 1;\n");
        assert_eq!(m.comments.len(), 1);
        assert_eq!(m.comments[0].0, 2);
        assert!(m.comments[0].1.contains("audit:allow(R1)"));
        assert!(!m.comments[0].2, "plain // comment is not a doc comment");
    }

    #[test]
    fn block_comment_lines_collected_individually() {
        let m = mask("/* one\ntwo\nthree */\n");
        let lines: Vec<usize> = m.comments.iter().map(|(l, _, _)| *l).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let m = mask("//! module doc audit:allow(R1): nope\n/// item doc\nfn f() {}\n");
        assert!(m.comments.iter().all(|(_, _, doc)| *doc));
        let m = mask("/** block doc */ fn g() {}\n");
        assert!(m.comments[0].2);
    }

    #[test]
    fn ident_ending_in_r_or_b_is_not_a_prefix() {
        let m = masked("let var\" = 0; let numb\"x\" = 1;\n");
        // Malformed code, but the masker must not panic or swallow idents.
        assert!(m.contains("var"));
    }
}
