//! Workspace traversal: which files get audited.
//!
//! The walker starts at the workspace root and visits `crates/**/*.rs` in
//! sorted relative-path order (determinism again — the report must not
//! depend on readdir order). It skips:
//!
//! * `target/` — build products;
//! * `vendor/` — vendored third-party crates are not held to this
//!   workspace's contract;
//! * any directory named `fixtures/` — the audit crate's own test corpus
//!   *contains deliberate violations* and must not fail the self-audit;
//! * hidden directories (`.git`, editor state).

use std::io;
use std::path::{Path, PathBuf};

use crate::report::AuditReport;
use crate::rules::audit_source;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", "fixtures"];

/// Collects every auditable `.rs` file under `root/crates`, workspace-
/// relative, sorted.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory", root.display()),
        ));
    }
    walk_dir(&crates, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk_dir(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk_dir(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Audits every workspace source file under `root` and aggregates the
/// per-file results into one [`AuditReport`].
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut report = AuditReport::default();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        let fa = audit_source(&rel, &text);
        report.violations.extend(fa.violations);
        report.suppressed.extend(fa.suppressed);
        report.unused_allows.extend(
            fa.unused_allows
                .into_iter()
                .map(|(l, r)| (rel.clone(), l, r)),
        );
        report.files_scanned.push(rel);
    }
    Ok(report)
}

/// Locates the workspace root from an arbitrary start directory by walking
/// up to the first directory holding both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
