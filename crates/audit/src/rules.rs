//! The audit rules and the per-file analysis driver.
//!
//! Every rule is lexical: it runs over the masked, tokenized source (see
//! [`crate::mask`] and [`crate::lex`]), scoped by file classification
//! ([`classify`]) and with `#[cfg(test)]` regions excluded. The rules are
//! deliberately conservative approximations — see each rule's doc for its
//! known blind spots and why the dynamic test suite covers them.

use crate::lex::{lex, SpannedTok, Tok};
use crate::mask::mask;

/// The audited rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// **D1** — no iteration over `HashMap`/`HashSet` in
    /// determinism-critical crates.
    ///
    /// Failure scenario: a campaign manifest is written in `HashMap`
    /// iteration order; two runs of the *same* spec produce differently
    /// ordered rows, the byte-diff resume check sees a modified file and
    /// re-runs every unit — or worse, a sharded merge interleaves rows
    /// differently per host and the merged artifact hash never stabilises.
    D1,
    /// **D2** — no wall-clock or entropy sources (`Instant::now`,
    /// `SystemTime`, `thread_rng`, `std::env` reads) outside CLI, bench
    /// and `bsld-par` code.
    ///
    /// Failure scenario: a library crate seeds a tie-break from
    /// `SystemTime::now()`; a replicated cell returns different BSLD means
    /// on consecutive runs and the 95 % confidence intervals in the
    /// campaign report silently stop meaning anything.
    D2,
    /// **N1** — no `==`/`!=` against float literals.
    ///
    /// Failure scenario: `if cap == 0.7` never fires because the cap was
    /// computed as `0.6999999999999999`; the power-capping branch is
    /// skipped and a sweep reports energy for the *uncapped* machine in
    /// the capped column. (Typed float comparisons are covered by
    /// `clippy::float_cmp` in the workspace lints; this rule catches the
    /// literal pattern clippy misses in macro-heavy or generic code.)
    N1,
    /// **N2** — no lossy `as` casts (integer-target or `as f32`) in
    /// energy-ledger and cell-identity code.
    ///
    /// Failure scenario: an energy accumulator is truncated `as u32`
    /// when joules exceed 4.3 × 10⁹ — about 50 days of a 1 kW rail — and
    /// the reported campaign energy wraps around to a small number.
    N2,
    /// **R1** — no `unwrap()`/`expect()`/`panic!` in library code.
    ///
    /// Failure scenario: a malformed SWF line makes a deep library call
    /// panic; under `bsld-par` the panic propagates after the pool drains
    /// and a 10-hour campaign dies instead of recording one failed row.
    R1,
    /// **A0** — an `audit:allow(...)` directive without a `: justification`
    /// tail. Escapes must say *why* or they rot.
    A0,
}

impl Rule {
    /// The rule's short name as used in `audit:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::N1 => "N1",
            Rule::N2 => "N2",
            Rule::R1 => "R1",
            Rule::A0 => "A0",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "N1" => Some(Rule::N1),
            "N2" => Some(Rule::N2),
            "R1" => Some(Rule::R1),
            "A0" => Some(Rule::A0),
            _ => None,
        }
    }
}

/// One rule violation (or suppressed would-be violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable cause.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// An `audit:allow` escape found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the directive's *comment* is on.
    pub line: usize,
    /// The code line the directive applies to (same line, or the next
    /// code line when the comment stands alone).
    pub target_line: usize,
    /// The rule being allowed.
    pub rule: Rule,
    /// Whether a `: justification` tail was present.
    pub justified: bool,
}

/// The audit result for one file.
#[derive(Debug, Default)]
pub struct FileAudit {
    /// Violations not covered by an allow — these fail the audit.
    pub violations: Vec<Violation>,
    /// Would-be violations suppressed by a justified `audit:allow`.
    pub suppressed: Vec<Violation>,
    /// Justified allows that matched nothing (stale escapes; reported,
    /// non-fatal).
    pub unused_allows: Vec<(usize, Rule)>,
}

/// How a file participates in the rule set, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — every rule applies.
    Lib,
    /// `src/bin/` — CLI entry points: D2/R1 exempt (a CLI may read the
    /// clock, args and env, and exit via panic-free `process::exit`, but
    /// its *output* must stay deterministic, so D1 still applies).
    Bin,
    /// Integration tests (`tests/`) — exempt from all rules.
    Test,
    /// Benchmarks (`benches/` or the `bench` crate) — exempt.
    Bench,
    /// Examples — exempt.
    Example,
}

/// Crates whose iteration order feeds persisted artifacts (reports, CSVs,
/// manifests, schedules): rule D1 applies.
const DETERMINISM_CRITICAL: [&str; 12] = [
    "core",
    "sched",
    "simkernel",
    "power",
    "powercap",
    "metrics",
    "swf",
    "workload",
    "cluster",
    "model",
    // The daemon's replies must be byte-identical to the one-shot CLI;
    // its clock reads (uptime, budget watchdog) carry per-line escapes.
    "serve",
    // The trace plane must be a pure function of the simulated run; only
    // the profiling plane (obs/src/profile.rs) reads the clock, behind
    // justified escapes.
    "obs",
];

/// Crates exempt from D2 wholesale: `par` implements the wall-clock budget
/// watchdog, `bench` measures wall time by definition.
const CLOCK_EXEMPT_CRATES: [&str; 2] = ["par", "bench"];

/// Files under these path prefixes (or exact paths) carry rule N2: they
/// hold energy ledgers, cell identity hashing, or persisted numeric output
/// where a silent truncation corrupts results.
const N2_SCOPE: [&str; 5] = [
    "crates/power/src/",
    "crates/powercap/src/",
    "crates/core/src/campaign.rs",
    "crates/core/src/distrib.rs",
    "crates/metrics/src/jsonout.rs",
];

/// Integer-target (or precision-losing `f32`) cast targets for N2.
const N2_TARGETS: [&str; 11] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32",
];

/// Iteration methods that expose hash order (D1).
const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Classifies a workspace-relative path into `(crate name, kind)`.
pub fn classify(rel_path: &str) -> (Option<String>, FileKind) {
    let rel = rel_path.replace('\\', "/");
    let krate = rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(str::to_string);
    let kind = if krate.as_deref() == Some("bench") || rel.contains("/benches/") {
        FileKind::Bench
    } else if rel.contains("/tests/") {
        FileKind::Test
    } else if rel.contains("/examples/") {
        FileKind::Example
    } else if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    (krate, kind)
}

/// Audits one file's source text. `rel_path` is workspace-relative and
/// decides which rules apply; the text is analysed standalone (no
/// cross-file knowledge).
pub fn audit_source(rel_path: &str, src: &str) -> FileAudit {
    let (krate, kind) = classify(rel_path);
    let mut out = FileAudit::default();

    // Tests, benches and examples: nothing to audit (but stale allows in
    // them would also never fire, so skip entirely).
    if matches!(kind, FileKind::Test | FileKind::Bench | FileKind::Example) {
        return out;
    }

    let masked = mask(src);
    let toks = lex(&masked.text);
    let src_lines: Vec<&str> = src.lines().collect();
    let masked_lines: Vec<&str> = masked.text.lines().collect();
    let test_lines = cfg_test_lines(&masked.text, &toks);
    let allows = collect_allows(&masked, &masked_lines, &mut out, rel_path, &src_lines);

    let mut raw: Vec<Violation> = Vec::new();
    let in_test = |line: usize| test_lines.contains(&line);
    let snippet = |line: usize| -> String {
        src_lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let push = |raw: &mut Vec<Violation>, line: usize, rule: Rule, message: String| {
        raw.push(Violation {
            file: rel_path.to_string(),
            line,
            rule,
            message,
            snippet: snippet(line),
        });
    };

    // --- D1: hash-order iteration in determinism-critical crates -------
    if krate
        .as_deref()
        .is_some_and(|k| DETERMINISM_CRITICAL.contains(&k))
    {
        let hash_idents = collect_hash_idents(&toks);
        for (i, st) in toks.iter().enumerate() {
            if in_test(st.line) {
                continue;
            }
            // NAME.method( where NAME is hash-typed and method iterates.
            if let Tok::Ident(m) = &st.tok {
                if HASH_ITER_METHODS.contains(&m.as_str())
                    && i >= 2
                    && toks[i - 1].tok == Tok::P('.')
                {
                    if let Tok::Ident(recv) = &toks[i - 2].tok {
                        if hash_idents.contains(recv) {
                            push(
                                &mut raw,
                                st.line,
                                Rule::D1,
                                format!("`{recv}.{m}()` iterates a hash collection; hash order leaks into results"),
                            );
                        }
                    }
                }
            }
            // for … in [&][mut] NAME {
            if st.tok.is_ident("for") {
                if let Some((name, line)) = for_loop_over(&toks, i, &hash_idents) {
                    push(
                        &mut raw,
                        line,
                        Rule::D1,
                        format!("`for … in {name}` iterates a hash collection; hash order leaks into results"),
                    );
                }
            }
        }
    }

    // --- D2: wall clock / entropy outside CLI, bench, par --------------
    let d2_applies = kind == FileKind::Lib
        && !krate
            .as_deref()
            .is_some_and(|k| CLOCK_EXEMPT_CRATES.contains(&k));
    if d2_applies {
        for (i, st) in toks.iter().enumerate() {
            if in_test(st.line) {
                continue;
            }
            let msg = match &st.tok {
                Tok::Ident(id) if id == "SystemTime" => {
                    Some("`SystemTime` reads the wall clock".to_string())
                }
                Tok::Ident(id) if id == "Instant" => {
                    if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::P2("::"))
                        && toks.get(i + 2).is_some_and(|t| t.tok.is_ident("now"))
                    {
                        Some("`Instant::now()` reads the wall clock".to_string())
                    } else {
                        None
                    }
                }
                Tok::Ident(id) if id == "thread_rng" || id == "from_entropy" => {
                    Some(format!("`{id}` draws OS entropy"))
                }
                Tok::Ident(id) if id == "env" => {
                    let prefixed_std = i >= 2
                        && toks[i - 1].tok == Tok::P2("::")
                        && toks[i - 2].tok.is_ident("std");
                    let reads = toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::P2("::"))
                        && toks.get(i + 2).is_some_and(|t| {
                            matches!(&t.tok, Tok::Ident(f)
                                if matches!(f.as_str(), "var" | "vars" | "var_os" | "args" | "args_os"))
                        });
                    if prefixed_std && reads {
                        Some(
                            "`std::env` read makes behaviour depend on the environment".to_string(),
                        )
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(m) = msg {
                push(&mut raw, st.line, Rule::D2, m);
            }
        }
    }

    // --- N1: ==/!= against float literals -------------------------------
    if kind == FileKind::Lib {
        for (i, st) in toks.iter().enumerate() {
            if in_test(st.line) {
                continue;
            }
            let op = match st.tok {
                Tok::P2("==") => "==",
                Tok::P2("!=") => "!=",
                _ => continue,
            };
            let lhs_float = i >= 1 && toks[i - 1].tok.is_float();
            let rhs_float = toks
                .get(i + 1)
                .map(|t| {
                    t.tok.is_float()
                        || (t.tok == Tok::P('-')
                            && toks.get(i + 2).is_some_and(|u| u.tok.is_float()))
                })
                .unwrap_or(false);
            if lhs_float || rhs_float {
                push(
                    &mut raw,
                    st.line,
                    Rule::N1,
                    format!("`{op}` against a float literal; exact float equality is representation-dependent"),
                );
            }
        }
    }

    // --- N2: lossy casts in ledger/identity code ------------------------
    let n2_applies = {
        let rel = rel_path.replace('\\', "/");
        N2_SCOPE.iter().any(|p| {
            if p.ends_with('/') {
                rel.starts_with(p)
            } else {
                rel == *p
            }
        })
    };
    if n2_applies {
        for (i, st) in toks.iter().enumerate() {
            if in_test(st.line) {
                continue;
            }
            if st.tok.is_ident("as") {
                if let Some(Tok::Ident(t)) = toks.get(i + 1).map(|t| &t.tok) {
                    if N2_TARGETS.contains(&t.as_str()) {
                        push(
                            &mut raw,
                            st.line,
                            Rule::N2,
                            format!(
                                "`as {t}` can silently truncate/wrap in ledger or identity code"
                            ),
                        );
                    }
                }
            }
        }
    }

    // --- R1: unwrap/expect/panic! in library code -----------------------
    if kind == FileKind::Lib {
        for (i, st) in toks.iter().enumerate() {
            if in_test(st.line) {
                continue;
            }
            match &st.tok {
                Tok::Ident(id) if id == "unwrap" || id == "expect" => {
                    let is_method = i >= 1 && toks[i - 1].tok == Tok::P('.');
                    let is_call = toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::P('('));
                    if is_method && is_call {
                        push(
                            &mut raw,
                            st.line,
                            Rule::R1,
                            format!("`.{id}()` can panic in library code; return an error instead"),
                        );
                    }
                }
                Tok::Ident(id)
                    if id == "panic" && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::P('!')) =>
                {
                    push(
                        &mut raw,
                        st.line,
                        Rule::R1,
                        "`panic!` in library code; return an error instead".to_string(),
                    );
                }
                _ => {}
            }
        }
    }

    // --- resolve allows --------------------------------------------------
    let mut used = vec![false; allows.len()];
    for v in raw {
        let mut hit = None;
        for (ai, a) in allows.iter().enumerate() {
            if a.justified && a.rule == v.rule && a.target_line == v.line {
                hit = Some(ai);
                break;
            }
        }
        match hit {
            Some(ai) => {
                used[ai] = true;
                out.suppressed.push(v);
            }
            None => out.violations.push(v),
        }
    }
    for (ai, a) in allows.iter().enumerate() {
        if a.justified && !used[ai] && a.rule != Rule::A0 {
            out.unused_allows.push((a.line, a.rule));
        }
    }
    out.violations.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Collects `audit:allow(...)` directives from comments and reports
/// malformed ones (unknown rule / missing justification) as A0 violations.
fn collect_allows(
    masked: &crate::mask::Masked,
    masked_lines: &[&str],
    out: &mut FileAudit,
    rel_path: &str,
    src_lines: &[&str],
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, text, doc) in &masked.comments {
        // Doc comments are rendered documentation: mentioning the
        // directive syntax there must not create (or misfire as) a live
        // escape.
        if *doc {
            continue;
        }
        let mut rest = text.as_str();
        while let Some(pos) = rest.find("audit:allow(") {
            rest = &rest[pos + "audit:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule_name = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            rest = after;
            let justified = after
                .trim_start()
                .strip_prefix(':')
                .map(|j| !j.trim().is_empty())
                .unwrap_or(false);
            let rule = Rule::parse(&rule_name);
            let target_line = allow_target_line(*line, masked_lines);
            match rule {
                Some(rule) if justified => allows.push(Allow {
                    line: *line,
                    target_line,
                    rule,
                    justified,
                }),
                Some(rule) => out.violations.push(Violation {
                    file: rel_path.to_string(),
                    line: *line,
                    rule: Rule::A0,
                    message: format!(
                        "audit:allow({}) without a `: justification` tail",
                        rule.name()
                    ),
                    snippet: src_lines
                        .get(line.saturating_sub(1))
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                }),
                None => out.violations.push(Violation {
                    file: rel_path.to_string(),
                    line: *line,
                    rule: Rule::A0,
                    message: format!("audit:allow({rule_name}) names an unknown rule"),
                    snippet: src_lines
                        .get(line.saturating_sub(1))
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                }),
            }
        }
    }
    allows
}

/// The code line an allow on `line` targets: its own line if it carries
/// code, else the next line that does.
fn allow_target_line(line: usize, masked_lines: &[&str]) -> usize {
    let own = masked_lines
        .get(line - 1)
        .map(|l| !l.trim().is_empty())
        .unwrap_or(false);
    if own {
        return line;
    }
    for (i, l) in masked_lines.iter().enumerate().skip(line) {
        if !l.trim().is_empty() {
            return i + 1;
        }
    }
    line
}

/// Identifiers declared (lexically) with a `HashMap`/`HashSet` type or
/// initialiser anywhere in the file: `name: HashMap<…>` (fields, params)
/// and `let [mut] name … = HashMap::…` / `HashSet::…` (bindings).
///
/// This is per-file and flow-insensitive by design: a map returned from
/// another module is invisible here. That blind spot is covered
/// dynamically — the determinism test suite byte-diffs repeated campaign
/// runs, which any hash-order leak perturbs.
fn collect_hash_idents(toks: &[SpannedTok]) -> Vec<String> {
    let mut names = Vec::new();
    let is_hash = |t: &Tok| t.is_ident("HashMap") || t.is_ident("HashSet");
    for i in 0..toks.len() {
        // name : [&] [mut] HashMap
        if toks[i].tok == Tok::P(':') && i >= 1 {
            if let Tok::Ident(name) = &toks[i - 1].tok {
                let mut j = i + 1;
                while toks
                    .get(j)
                    .is_some_and(|t| t.tok == Tok::P('&') || t.tok.is_ident("mut"))
                {
                    j += 1;
                }
                // Allow one path segment: std::collections::HashMap.
                while toks.get(j).is_some_and(|t| matches!(t.tok, Tok::Ident(_)))
                    && toks.get(j + 1).map(|t| &t.tok) == Some(&Tok::P2("::"))
                {
                    j += 2;
                }
                if toks.get(j).is_some_and(|t| is_hash(&t.tok)) {
                    names.push(name.clone());
                }
            }
        }
        // let [mut] name … = … HashMap/HashSet … ;   (same statement)
        if toks[i].tok.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.tok.is_ident("mut")) {
                j += 1;
            }
            if let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) {
                let mut k = j + 1;
                while let Some(t) = toks.get(k) {
                    if t.tok == Tok::P(';') {
                        break;
                    }
                    if is_hash(&t.tok) {
                        names.push(name.clone());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// If the `for` at `toks[i]` loops directly over a hash-typed identifier
/// (`for … in [&] [mut] NAME {`), returns the name and line.
fn for_loop_over(toks: &[SpannedTok], i: usize, hash_idents: &[String]) -> Option<(String, usize)> {
    // Find the `in` at this loop's top level (patterns contain no `in`).
    let mut j = i + 1;
    let mut depth = 0i32;
    loop {
        let t = toks.get(j)?;
        match &t.tok {
            Tok::P('(') | Tok::P('[') => depth += 1,
            Tok::P(')') | Tok::P(']') => depth -= 1,
            Tok::P('{') => return None, // body reached without `in`
            Tok::Ident(id) if id == "in" && depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    j += 1;
    while toks
        .get(j)
        .is_some_and(|t| t.tok == Tok::P('&') || t.tok.is_ident("mut"))
    {
        j += 1;
    }
    let name = match &toks.get(j)?.tok {
        Tok::Ident(n) => n.clone(),
        _ => return None,
    };
    if toks.get(j + 1)?.tok != Tok::P('{') {
        return None; // `for x in map.keys()` etc. — caught by method rule
    }
    if hash_idents.contains(&name) {
        Some((name, toks[j].line))
    } else {
        None
    }
}

/// Lines covered by a `#[cfg(test)]` item (attribute through matching
/// closing brace), computed on masked source so braces in strings or
/// comments cannot unbalance the match.
fn cfg_test_lines(masked: &str, toks: &[SpannedTok]) -> std::collections::BTreeSet<usize> {
    let mut lines = std::collections::BTreeSet::new();
    // Find `# [ cfg ( test ) ]` token runs.
    let mut i = 0;
    while i < toks.len() {
        let is_attr = toks[i].tok == Tok::P('#')
            && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::P('['))
            && toks.get(i + 2).is_some_and(|t| t.tok.is_ident("cfg"))
            && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::P('('))
            && toks.get(i + 4).is_some_and(|t| t.tok.is_ident("test"))
            && toks.get(i + 5).map(|t| &t.tok) == Some(&Tok::P(')'))
            && toks.get(i + 6).map(|t| &t.tok) == Some(&Tok::P(']'));
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Scan forward to the item's opening `{` (or terminating `;` for
        // `mod tests;` / `use` items), then brace-match.
        let mut j = i + 7;
        let mut end_line = start_line;
        while let Some(t) = toks.get(j) {
            match t.tok {
                Tok::P(';') => {
                    end_line = t.line;
                    break;
                }
                Tok::P('{') => {
                    let mut depth = 1i32;
                    let mut k = j + 1;
                    while let Some(u) = toks.get(k) {
                        match u.tok {
                            Tok::P('{') => depth += 1,
                            Tok::P('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    end_line = u.line;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if end_line == start_line {
                        end_line = masked.lines().count();
                    }
                    break;
                }
                _ => {
                    end_line = t.line;
                }
            }
            j += 1;
        }
        for l in start_line..=end_line {
            lines.insert(l);
        }
        i = j + 1;
    }
    lines
}
