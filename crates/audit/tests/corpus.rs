//! The analyzer's fixture corpus: positive and negative examples per rule.
//!
//! Each fixture in `tests/fixtures/` is real Rust source holding deliberate
//! violations (or deliberate near-misses). The files live under a
//! `fixtures/` directory precisely because the workspace walker skips that
//! name — `self_audit.rs` proves the corpus never leaks into the real
//! audit. Here each fixture is fed to [`bsld_audit::audit_source`] under a
//! *synthetic* workspace-relative path, because the path decides which
//! rules apply (crate scoping, lib/test/bin classification).

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use bsld_audit::{audit_source, FileAudit, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Audits a fixture as if it sat at `rel_path` in the workspace.
fn audit_as(name: &str, rel_path: &str) -> FileAudit {
    audit_source(rel_path, &fixture(name))
}

fn lines_of(fa: &FileAudit, rule: Rule) -> Vec<usize> {
    fa.violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn d1_flags_hash_iteration_in_critical_crates() {
    let fa = audit_as("d1_pos.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        lines_of(&fa, Rule::D1),
        vec![6, 11, 18, 22],
        "direct .values(), for-loop, .drain(), .keys() must all fire: {:?}",
        fa.violations
    );
    assert_eq!(fa.violations.len(), 4, "nothing else fires");
}

#[test]
fn d1_is_scoped_to_determinism_critical_crates() {
    // The same source in a crate whose artifacts are not replayed
    // byte-for-byte (the audit tool itself) is exempt.
    let fa = audit_as("d1_pos.rs", "crates/audit/src/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
}

#[test]
fn d1_ignores_keyed_access_ordered_maps_and_trapped_text() {
    let fa = audit_as("d1_neg.rs", "crates/core/src/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
}

#[test]
fn d2_flags_clock_entropy_and_env_reads() {
    let fa = audit_as("d2_pos.rs", "crates/swf/src/fixture.rs");
    let lines = lines_of(&fa, Rule::D2);
    for expected in [5, 9, 13, 17] {
        assert!(
            lines.contains(&expected),
            "line {expected} must fire: {:?}",
            fa.violations
        );
    }
    assert_eq!(
        fa.violations.len(),
        lines.len(),
        "only D2 fires in this fixture"
    );
}

#[test]
fn d2_ignores_names_in_strings_and_comments() {
    let fa = audit_as("d2_neg.rs", "crates/swf/src/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
}

#[test]
fn d2_is_exempt_in_bins_tests_and_par() {
    for rel in [
        "crates/core/src/bin/fixture.rs",
        "crates/swf/tests/fixture.rs",
        "crates/par/src/fixture.rs",
    ] {
        let fa = audit_as("d2_pos.rs", rel);
        assert!(
            lines_of(&fa, Rule::D2).is_empty(),
            "{rel}: {:?}",
            fa.violations
        );
    }
}

#[test]
fn n1_flags_float_literal_equality_on_either_side() {
    let fa = audit_as("n1_pos.rs", "crates/model/src/fixture.rs");
    assert_eq!(
        lines_of(&fa, Rule::N1),
        vec![4, 8, 12, 16],
        "{:?}",
        fa.violations
    );
}

#[test]
fn n1_ignores_ints_ranges_method_calls_and_strings() {
    let fa = audit_as("n1_neg.rs", "crates/model/src/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
}

#[test]
fn n2_flags_lossy_casts_in_ledger_scope_only() {
    let fa = audit_as("n2_pos.rs", "crates/power/src/fixture.rs");
    assert_eq!(
        lines_of(&fa, Rule::N2),
        vec![4, 8, 12],
        "{:?}",
        fa.violations
    );
    // Same source outside the N2 scope: silent.
    let fa = audit_as("n2_pos.rs", "crates/sched/src/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
}

#[test]
fn n2_ignores_lossless_widening_and_trapped_text() {
    let fa = audit_as("n2_neg.rs", "crates/power/src/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
}

#[test]
fn r1_flags_panic_paths_including_multiline_chains() {
    let fa = audit_as("r1_pos.rs", "crates/model/src/fixture.rs");
    let lines = lines_of(&fa, Rule::R1);
    for expected in [4, 8, 12, 20] {
        assert!(
            lines.contains(&expected),
            "line {expected} must fire (the chain's .unwrap() sits on its own line): {:?}",
            fa.violations
        );
    }
}

#[test]
fn r1_is_silent_in_cfg_test_modules_and_test_files() {
    let fa = audit_as("r1_neg.rs", "crates/model/src/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
    // A whole integration-test file is exempt even with live unwraps.
    let fa = audit_as("r1_pos.rs", "crates/model/tests/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
}

#[test]
fn justified_allows_suppress_in_both_forms() {
    // N2 must be live at this path for the standalone allow to bind.
    let fa = audit_as("allow_ok.rs", "crates/power/src/fixture.rs");
    assert!(fa.violations.is_empty(), "{:?}", fa.violations);
    assert_eq!(fa.suppressed.len(), 2, "{:?}", fa.suppressed);
    assert!(fa.unused_allows.is_empty(), "{:?}", fa.unused_allows);
}

#[test]
fn defective_allows_fail_loudly() {
    let fa = audit_as("allow_bad.rs", "crates/power/src/fixture.rs");
    let a0 = lines_of(&fa, Rule::A0);
    assert_eq!(
        a0.len(),
        2,
        "unjustified + unknown-rule: {:?}",
        fa.violations
    );
    // An unjustified allow does not suppress its target…
    assert!(!lines_of(&fa, Rule::R1).is_empty(), "{:?}", fa.violations);
    // …nor does an unknown-rule allow.
    assert!(!lines_of(&fa, Rule::N2).is_empty(), "{:?}", fa.violations);
    // A justified allow matching nothing is reported as stale.
    assert_eq!(fa.unused_allows.len(), 1, "{:?}", fa.unused_allows);
}
