// N1 positives: equality against float literals.

pub fn eq_literal(x: f64) -> bool {
    x == 0.7
}

pub fn ne_literal(y: f64) -> bool {
    y != 1.0
}

pub fn literal_on_left(z: f64) -> bool {
    0.5 == z
}

pub fn exponent_literal(w: f64) -> bool {
    w == 1e-9
}
