// R1 positives: panic paths in library code, including a multi-line chain.

pub fn unwrap_it(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn expect_it(v: Result<u64, String>) -> u64 {
    v.expect("always ok")
}

pub fn boom() {
    panic!("library code must not panic");
}

pub fn multi_line_chain(pairs: &[(u64, u64)]) -> u64 {
    pairs
        .iter()
        .map(|&(a, b)| a.checked_add(b))
        .collect::<Option<Vec<_>>>()
        .unwrap()
        .len() as u64
}
