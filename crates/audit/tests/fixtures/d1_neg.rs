// D1 negatives: keyed access without iteration, ordered containers, and
// rule text trapped in strings/comments.
use std::collections::{BTreeMap, HashMap};

pub fn keyed_only(h: &mut HashMap<String, u64>) -> Option<u64> {
    *h.entry("hit".to_string()).or_insert(0) += 1;
    h.get("hit").copied()
}

pub fn ordered_iter(b: &BTreeMap<String, u64>) -> u64 {
    // Iterating a BTreeMap is fine: the order is the key order.
    b.values().sum()
}

pub fn trapped_text() -> String {
    // A comment saying `h.keys()` on a HashMap must not fire.
    format!("docs: HashMap::iter() is {}", "h.values()")
}
