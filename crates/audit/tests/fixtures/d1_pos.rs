// D1 positives: iteration over hash-ordered containers, audited as if this
// file lived in a determinism-critical crate.
use std::collections::{HashMap, HashSet};

pub fn direct_iter(m: &HashMap<String, u64>) -> u64 {
    m.values().sum()
}

pub fn for_loop(m: HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (_k, v) in &m {
        acc += v;
    }
    acc
}

pub fn set_drain(s: &mut HashSet<u64>) -> Vec<u64> {
    s.drain().collect()
}

pub fn keys_chain(lookup: &HashMap<String, Vec<u64>>) -> Vec<String> {
    lookup.keys().cloned().collect()
}
