// D2 negatives: the forbidden names appear only inside strings, comments
// and raw strings — never as code.

pub fn strings_only() -> &'static str {
    // `Instant::now()` in a comment is documentation, not a clock read.
    "error: do not call SystemTime::now() or thread_rng() here"
}

pub fn raw_strings() -> &'static str {
    r#"std::env::var("PATH") would be a D2 violation if it were code"#
}

/* A block comment mentioning Instant::now() and std::env::args(). */
pub fn seeded(seed: u64) -> u64 {
    seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1)
}
