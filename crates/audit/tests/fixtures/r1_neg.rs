// R1 negatives: unwraps confined to `#[cfg(test)]`, and rule text inside
// comments and strings.

pub fn fallible(v: Option<u64>) -> Option<u64> {
    // Do not call .unwrap() here; see `panic!` docs.
    v.map(|x| x + 1)
}

pub fn trapped() -> &'static str {
    "calling .expect(\"msg\") would be an R1 violation"
}

#[cfg(test)]
mod tests {
    use super::fallible;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(fallible(Some(1)).unwrap(), 2);
        let v: Result<u64, String> = Ok(3);
        assert_eq!(v.expect("test code may expect"), 3);
    }
}
