// N2 negatives: lossless widenings and `as` text inside strings/comments.

pub fn widening(w: u32) -> f64 {
    // `u32 -> f64` is exact for every value; f64 is not an N2 target.
    w as f64
}

pub fn trapped() -> &'static str {
    "cast it `as u32` — only text"
}
