// N1 negatives: integer comparisons, ranges, method calls on numbers, and
// float-literal text inside strings.

pub fn int_eq(n: u64) -> bool {
    n == 0
}

pub fn range_is_not_float(n: usize) -> usize {
    (0..10).filter(|i| *i != n).count()
}

pub fn method_on_int() -> i64 {
    1.max(2)
}

pub fn hex_with_e() -> bool {
    0x1E3 == 0x1E3
}

pub fn trapped() -> &'static str {
    "x == 0.5 is only text here"
}
