// Defective allows: unjustified, unknown rule, and stale (matching
// nothing). The first two are A0 violations; the stale one is a note.

pub fn unjustified(v: Option<u64>) -> u64 {
    v.unwrap() // audit:allow(R1)
}

pub fn unknown_rule(joules: f64) -> u64 {
    // audit:allow(Z9): no such rule
    joules as u64
}

pub fn stale() -> u64 {
    // audit:allow(R1): nothing on the next line can panic
    41 + 1
}
