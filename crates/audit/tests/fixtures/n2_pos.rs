// N2 positives: lossy `as` casts, audited as if in energy-ledger scope.

pub fn truncating(joules: f64) -> u64 {
    joules as u64
}

pub fn narrowing(cells: usize) -> u32 {
    cells as u32
}

pub fn precision_loss(exact: f64) -> f32 {
    exact as f32
}
