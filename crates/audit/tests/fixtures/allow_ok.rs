// Justified allows: same-line and standalone-line forms, both suppressing.

pub fn same_line(v: Option<u64>) -> u64 {
    v.unwrap() // audit:allow(R1): fixture demonstrating a same-line escape
}

pub fn standalone(joules: f64) -> u64 {
    // audit:allow(N2): fixture demonstrating a standalone-line escape
    joules as u64
}
