// D2 positives: wall-clock and entropy reads in library code.
use std::time::{Instant, SystemTime};

pub fn wall_clock() -> Instant {
    Instant::now()
}

pub fn epoch() -> SystemTime {
    SystemTime::now()
}

pub fn env_read() -> Option<String> {
    std::env::var("BSLD_SECRET_KNOB").ok()
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
