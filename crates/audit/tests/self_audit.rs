//! The audit applied to the workspace that ships it.
//!
//! Two guarantees, both load-bearing for CI:
//!
//! 1. **The workspace is clean.** Every source file passes every rule, and
//!    every escape hatch carries a justification. A PR that introduces a
//!    violation (or a stale allow) fails `cargo test` before it even
//!    reaches the dedicated CI audit step.
//! 2. **The analyzer still detects violations.** A seeded, deliberately
//!    broken mini-workspace must FAIL the audit. Without this negative
//!    control, a refactor that silently turned the analyzer into a no-op
//!    would keep CI green while enforcing nothing.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::path::Path;

use bsld_audit::{audit_workspace, find_root, Rule};

fn workspace_root() -> std::path::PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("audit crate lives in the workspace")
}

#[test]
fn the_workspace_is_clean() {
    let report = audit_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        report.ok(),
        "the workspace must audit clean:\n{}",
        report.render_text()
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale audit:allow escapes must be removed:\n{}",
        report.render_text()
    );
    // The corpus under tests/fixtures/ holds deliberate violations; if the
    // walker ever descended into it this count would explode. A floor on
    // files_scanned guards the opposite failure (walking nothing at all).
    assert!(
        report.files_scanned.len() >= 50,
        "suspiciously few files scanned: {}",
        report.files_scanned.len()
    );
    assert!(
        !report
            .files_scanned
            .iter()
            .any(|f| f.contains("/fixtures/")),
        "fixture corpus leaked into the workspace audit"
    );
}

#[test]
fn the_serve_crate_is_audited_as_determinism_critical() {
    // Positive control: the daemon's sources are in the scanned set (its
    // library logic is under the full contract; the deliberate clock reads
    // in daemon.rs carry justified audit:allow(D2) escapes, counted as
    // suppressed, not violations).
    let report = audit_workspace(&workspace_root()).expect("walk workspace");
    for file in [
        "crates/serve/src/daemon.rs",
        "crates/serve/src/state.rs",
        "crates/serve/src/cache.rs",
        "crates/serve/src/proto.rs",
        "crates/serve/src/client.rs",
    ] {
        assert!(
            report.files_scanned.iter().any(|f| f == file),
            "{file} must be audited"
        );
    }

    // Negative control: hash-order iteration seeded into a scratch `serve`
    // crate must trip D1 — proving the daemon is on the
    // determinism-critical list, not just scanned.
    let root = std::env::temp_dir().join(format!("bsld-audit-serve-{}", std::process::id()));
    let src_dir = root.join("crates/serve/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    std::fs::write(
        src_dir.join("lib.rs"),
        "use std::collections::HashMap;\n\
         pub fn dump(cells: &HashMap<u64, f64>) {\n\
         \x20   for (k, v) in cells.iter() {\n\
         \x20       println!(\"{k} {v}\");\n\
         \x20   }\n\
         }\n",
    )
    .expect("write seeded violation");

    let report = audit_workspace(&root).expect("walk scratch workspace");
    std::fs::remove_dir_all(&root).ok();
    assert!(
        report.violations.iter().any(|v| v.rule == Rule::D1),
        "hash-order iteration in crates/serve must fail D1:\n{}",
        report.render_text()
    );
}

#[test]
fn the_obs_crate_is_audited_as_determinism_critical() {
    // Positive control: both planes of the observability crate are in the
    // scanned set (the profiling plane's deliberate clock reads carry
    // justified audit:allow(D2) escapes, counted as suppressed).
    let report = audit_workspace(&workspace_root()).expect("walk workspace");
    for file in ["crates/obs/src/trace.rs", "crates/obs/src/profile.rs"] {
        assert!(
            report.files_scanned.iter().any(|f| f == file),
            "{file} must be audited"
        );
    }

    // Negative controls: a scratch `obs` crate seeding (a) a wall-clock
    // read into the trace plane must trip D2 — the plane-separation
    // guarantee — and (b) hash-order iteration must trip D1, proving the
    // crate is on the determinism-critical list, not just scanned.
    let root = std::env::temp_dir().join(format!("bsld-audit-obs-{}", std::process::id()));
    let src_dir = root.join("crates/obs/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    std::fs::write(
        src_dir.join("lib.rs"),
        "use std::collections::HashMap;\n\
         pub fn stamp() -> std::time::Instant {\n\
         \x20   std::time::Instant::now()\n\
         }\n\
         pub fn dump(cells: &HashMap<u64, f64>) {\n\
         \x20   for (k, v) in cells.iter() {\n\
         \x20       println!(\"{k} {v}\");\n\
         \x20   }\n\
         }\n",
    )
    .expect("write seeded violations");

    let report = audit_workspace(&root).expect("walk scratch workspace");
    std::fs::remove_dir_all(&root).ok();
    assert!(
        report.violations.iter().any(|v| v.rule == Rule::D2),
        "an unescaped clock read in crates/obs must fail D2:\n{}",
        report.render_text()
    );
    assert!(
        report.violations.iter().any(|v| v.rule == Rule::D1),
        "hash-order iteration in crates/obs must fail D1:\n{}",
        report.render_text()
    );
}

#[test]
fn a_seeded_violation_fails_the_audit() {
    // A unique-per-process scratch workspace; no wall clock or RNG needed.
    let root = std::env::temp_dir().join(format!("bsld-audit-neg-{}", std::process::id()));
    let src_dir = root.join("crates/badcrate/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    )
    .expect("write seeded violation");

    let report = audit_workspace(&root).expect("walk scratch workspace");
    std::fs::remove_dir_all(&root).ok();

    assert!(!report.ok(), "the seeded unwrap must fail the audit");
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::R1);
    assert_eq!(v.line, 2);
    assert_eq!(v.file, "crates/badcrate/src/lib.rs");
}
