//! The paper's future work, implemented: dynamically raising the frequency
//! of running reduced jobs when the wait queue deepens.
//!
//! ```text
//! cargo run --release --example dynamic_boost
//! ```
//!
//! Compares the plain BSLD-threshold policy against the same policy with
//! the boost extension at several queue limits, on a bursty workload where
//! DVFS-induced queueing is the dominant cost.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::metrics::TextTable;
use bsld::par::par_map;
use bsld::workload::profiles::TraceProfile;

fn main() {
    let w = TraceProfile::llnl_thunder().generate(2010, 3000);
    let sim0 = Simulator::paper_default(&w.cluster_name, w.cpus);
    let base = sim0.run_baseline(&w.jobs).unwrap().metrics;
    let cfg = PowerAwareConfig {
        bsld_threshold: 3.0,
        wq_threshold: WqThreshold::NoLimit,
    };

    println!(
        "{}: {} cpus, baseline avg BSLD {:.2}, avg wait {:.0} s\n",
        w.cluster_name, w.cpus, base.avg_bsld, base.avg_wait_secs
    );

    let variants: Vec<Option<usize>> = vec![None, Some(32), Some(8), Some(2), Some(0)];
    let rows = par_map(variants, bsld::par::default_threads(), |boost| {
        let sim = match boost {
            None => sim0.clone(),
            Some(limit) => sim0.clone().with_boost(limit),
        };
        let m = sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics;
        (boost, m)
    });

    let mut t = TextTable::new(vec![
        "variant",
        "E(idle=0)",
        "avg BSLD",
        "avg wait(s)",
        "reduced jobs",
    ]);
    for (boost, m) in rows {
        let label = match boost {
            None => "no boost (paper policy)".to_string(),
            Some(l) => format!("boost when queue > {l}"),
        };
        t.row(vec![
            label,
            format!("{:.3}", m.energy.normalized_computational(&base.energy)),
            format!("{:.2}", m.avg_bsld),
            format!("{:.0}", m.avg_wait_secs),
            m.reduced_jobs.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "tighter boost limits trade energy savings back for wait time — the\n\
         knob the paper proposed for future work."
    );
}
