//! SWF trace tooling: write, parse, clean and characterise a trace, then
//! simulate it.
//!
//! ```text
//! cargo run --release --example trace_analysis [path/to/trace.swf]
//! ```
//!
//! Without an argument the example fabricates a messy SWF file (flurries,
//! overruns, broken records) to demonstrate the cleaning pipeline — exactly
//! what the Parallel Workload Archive's "cleaned" traces went through
//! before the paper used them.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::Simulator;
use bsld::swf::{
    clean_trace, parse_swf, select_segment, write_swf, CleanConfig, SwfHeader, SwfRecord, SwfTrace,
    TraceStats,
};
use bsld::workload::Workload;

fn fabricate_messy_trace() -> String {
    let mut records = Vec::new();
    let mut id = 1i64;
    // Normal traffic: 400 jobs from 20 users.
    for i in 0..400i64 {
        let mut r = SwfRecord::simple(id, i * 300, 200 + (i % 11) * 700, 1 + (i % 16), 9000);
        r.user = i % 20;
        records.push(r);
        id += 1;
    }
    // A flurry: user 77 submits 120 jobs within two minutes.
    for i in 0..120i64 {
        let mut r = SwfRecord::simple(id, 30_000 + i, 60, 1, 300);
        r.user = 77;
        records.push(r);
        id += 1;
    }
    // Overruns: runtime exceeds the estimate.
    for i in 0..10i64 {
        let mut r = SwfRecord::simple(id, 40_000 + i * 100, 5_000, 4, 600);
        r.req_time = 600;
        r.user = 3;
        records.push(r);
        id += 1;
    }
    // Broken rows: unknown sizes.
    records.push(SwfRecord::unknown());
    let trace = SwfTrace {
        header: SwfHeader {
            max_procs: Some(64),
            max_runtime: Some(64_800),
            max_jobs: Some(records.len() as u64),
            unix_start_time: Some(1_100_000_000),
            extra: vec!["Computer: fabricated demo machine".into()],
        },
        records,
    };
    write_swf(&trace)
}

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => {
            println!("(no trace given — fabricating a messy demo trace)\n");
            fabricate_messy_trace()
        }
    };

    let mut trace = match parse_swf(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed {} records; machine size {:?}",
        trace.records.len(),
        trace.header.max_procs
    );

    let summary = clean_trace(&mut trace, &CleanConfig::default());
    println!(
        "cleaning: dropped {} invalid, {} flurry, {} oversize; clamped {} overruns",
        summary.dropped_invalid,
        summary.dropped_flurry,
        summary.dropped_oversize,
        summary.clamped_runtime
    );

    let stats = TraceStats::of(&trace);
    println!(
        "\ncharacteristics: {} jobs | mean size {:.1} cpus ({:.0}% serial) | \
         mean runtime {:.0} s ({:.0}% under 10 min) | offered load {:.2}",
        stats.jobs,
        stats.size.mean(),
        stats.serial_fraction * 100.0,
        stats.runtime.mean(),
        stats.short_fraction * 100.0,
        stats.offered_load
    );

    // Simulate a segment like the paper: up to 5 000 jobs, arrivals rebased.
    let seg = select_segment(&trace, 0, 5000);
    let w = Workload::from_swf("trace", &seg);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    match sim.run_baseline(&w.jobs) {
        Ok(res) => println!(
            "\nbaseline simulation: avg BSLD {:.2}, avg wait {:.0} s, utilization {:.2}",
            res.metrics.avg_bsld, res.metrics.avg_wait_secs, res.metrics.utilization
        ),
        Err(e) => eprintln!("simulation rejected the trace: {e}"),
    }
}
