//! Quickstart: run the paper's policy on one workload and read the numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a 2 000-job SDSC-Blue-like workload, schedules it with plain
//! EASY backfilling (no DVFS) and with the BSLD-threshold power-aware
//! policy at the paper's medium setting (threshold 2, no queue limit), and
//! prints the energy/performance trade-off.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::metrics::TextTable;
use bsld::workload::profiles::TraceProfile;

fn main() {
    let seed = 2010;
    let jobs = 2000;
    let workload = TraceProfile::sdsc_blue().generate(seed, jobs);
    println!(
        "workload: {} on {} cpus, {} jobs, offered load {:.2}",
        workload.cluster_name,
        workload.cpus,
        workload.jobs.len(),
        workload.offered_load()
    );

    let sim = Simulator::paper_default(&workload.cluster_name, workload.cpus);

    let base = sim
        .run_baseline(&workload.jobs)
        .expect("workload fits the machine");
    let cfg = PowerAwareConfig {
        bsld_threshold: 2.0,
        wq_threshold: WqThreshold::NoLimit,
    };
    let dvfs = sim
        .run_power_aware(&workload.jobs, &cfg)
        .expect("workload fits the machine");

    let mut t = TextTable::new(vec!["metric", "EASY (no DVFS)", "power-aware 2/NO"]);
    t.row(vec![
        "avg BSLD".to_string(),
        format!("{:.2}", base.metrics.avg_bsld),
        format!("{:.2}", dvfs.metrics.avg_bsld),
    ]);
    t.row(vec![
        "avg wait (s)".to_string(),
        format!("{:.0}", base.metrics.avg_wait_secs),
        format!("{:.0}", dvfs.metrics.avg_wait_secs),
    ]);
    t.row(vec![
        "jobs at reduced frequency".to_string(),
        base.metrics.reduced_jobs.to_string(),
        dvfs.metrics.reduced_jobs.to_string(),
    ]);
    t.row(vec![
        "energy, idle=0 (normalized)".to_string(),
        "1.000".to_string(),
        format!(
            "{:.3}",
            dvfs.metrics
                .energy
                .normalized_computational(&base.metrics.energy)
        ),
    ]);
    t.row(vec![
        "energy, idle=low (normalized)".to_string(),
        "1.000".to_string(),
        format!(
            "{:.3}",
            dvfs.metrics
                .energy
                .normalized_with_idle(&base.metrics.energy)
        ),
    ]);
    t.row(vec![
        "utilization".to_string(),
        format!("{:.3}", base.metrics.utilization),
        format!("{:.3}", dvfs.metrics.utilization),
    ]);
    println!("\n{}", t.render());

    let saving = 1.0
        - dvfs
            .metrics
            .energy
            .normalized_computational(&base.metrics.energy);
    println!(
        "the power-aware scheduler saved {:.1}% CPU energy at a BSLD cost of {:.2} → {:.2}",
        saving * 100.0,
        base.metrics.avg_bsld,
        dvfs.metrics.avg_bsld
    );
}
