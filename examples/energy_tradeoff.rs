//! The knob study: how `BSLD_threshold` and `WQ_threshold` trade energy for
//! performance on one machine (the paper's Section 5.1, condensed).
//!
//! ```text
//! cargo run --release --example energy_tradeoff [workload]
//! ```
//!
//! `workload` ∈ {ctc, sdsc, blue, thunder, atlas}; default `blue`.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::metrics::TextTable;
use bsld::workload::profiles::TraceProfile;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "blue".to_string());
    let profile = match which.as_str() {
        "ctc" => TraceProfile::ctc(),
        "sdsc" => TraceProfile::sdsc(),
        "blue" => TraceProfile::sdsc_blue(),
        "thunder" => TraceProfile::llnl_thunder(),
        "atlas" => TraceProfile::llnl_atlas(),
        other => {
            eprintln!("unknown workload {other}; use ctc|sdsc|blue|thunder|atlas");
            std::process::exit(1);
        }
    };
    let w = profile.generate(2010, 3000);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);
    let base = sim.run_baseline(&w.jobs).unwrap();
    println!(
        "{}: baseline avg BSLD {:.2}, avg wait {:.0} s\n",
        w.cluster_name, base.metrics.avg_bsld, base.metrics.avg_wait_secs
    );

    let mut t = TextTable::new(vec![
        "BSLDth/WQth",
        "E(idle=0)",
        "E(idle=low)",
        "avg BSLD",
        "avg wait(s)",
        "reduced",
    ]);
    for bsld_th in [1.5, 2.0, 3.0] {
        for wq in [
            WqThreshold::Limit(0),
            WqThreshold::Limit(4),
            WqThreshold::Limit(16),
            WqThreshold::NoLimit,
        ] {
            let cfg = PowerAwareConfig {
                bsld_threshold: bsld_th,
                wq_threshold: wq,
            };
            let run = sim.run_power_aware(&w.jobs, &cfg).unwrap();
            t.row(vec![
                cfg.label(),
                format!(
                    "{:.3}",
                    run.metrics
                        .energy
                        .normalized_computational(&base.metrics.energy)
                ),
                format!(
                    "{:.3}",
                    run.metrics
                        .energy
                        .normalized_with_idle(&base.metrics.energy)
                ),
                format!("{:.2}", run.metrics.avg_bsld),
                format!("{:.0}", run.metrics.avg_wait_secs),
                run.metrics.reduced_jobs.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("lower energy ⇒ higher BSLD: pick the threshold pair that fits your SLA.");
}
