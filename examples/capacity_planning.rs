//! Capacity planning with DVFS: is a bigger, slower machine cheaper?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! Reruns one workload on machines enlarged by 0–125 % under the
//! power-aware scheduler (`BSLD_threshold = 2`) and reports, per size, the
//! energy (both idle scenarios) and performance — the paper's Section 5.2
//! question: "can more DVFS processors execute the same load with less
//! energy *and* better service?"

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::{PowerAwareConfig, Simulator, WqThreshold};
use bsld::metrics::TextTable;
use bsld::par::par_map;
use bsld::workload::profiles::TraceProfile;

fn main() {
    let w = TraceProfile::ctc().generate(2010, 3000);
    let base = Simulator::paper_default(&w.cluster_name, w.cpus)
        .run_baseline(&w.jobs)
        .unwrap()
        .metrics;
    println!(
        "{}: original machine {} cpus, baseline avg BSLD {:.2}\n",
        w.cluster_name, w.cpus, base.avg_bsld
    );

    let sizes = [0u32, 10, 20, 50, 75, 100, 125];
    let cfg = PowerAwareConfig {
        bsld_threshold: 2.0,
        wq_threshold: WqThreshold::Limit(0),
    };
    let results = par_map(sizes.to_vec(), bsld::par::default_threads(), |pct| {
        let sim = Simulator::paper_default(&w.cluster_name, w.cpus).enlarged(pct);
        (pct, sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics)
    });

    let mut t = TextTable::new(vec![
        "size",
        "cpus",
        "E(idle=0)",
        "E(idle=low)",
        "avg BSLD",
        "avg wait(s)",
    ]);
    for (pct, m) in &results {
        let cpus = (w.cpus as u64 * (100 + *pct as u64) + 50) / 100;
        t.row(vec![
            format!("+{pct}%"),
            cpus.to_string(),
            format!("{:.3}", m.energy.normalized_computational(&base.energy)),
            format!("{:.3}", m.energy.normalized_with_idle(&base.energy)),
            format!("{:.2}", m.avg_bsld),
            format!("{:.0}", m.avg_wait_secs),
        ]);
    }
    println!("{}", t.render());

    // Find the smallest enlargement that beats the baseline BSLD.
    if let Some((pct, m)) = results.iter().find(|(_, m)| m.avg_bsld <= base.avg_bsld) {
        println!(
            "smallest enlargement with same-or-better performance: +{pct}% \
             (BSLD {:.2} vs {:.2}, computational energy ×{:.3})",
            m.avg_bsld,
            base.avg_bsld,
            m.energy.normalized_computational(&base.energy)
        );
    } else {
        println!("no tested enlargement beat the baseline BSLD — increase the range");
    }
    // And the idle-aware optimum (the paper's "there is a point after which
    // a larger machine costs more" observation).
    let best = results
        .iter()
        .min_by(|a, b| {
            a.1.energy
                .normalized_with_idle(&base.energy)
                .total_cmp(&b.1.energy.normalized_with_idle(&base.energy))
        })
        .unwrap();
    println!(
        "idle-aware energy optimum: +{}% (×{:.3})",
        best.0,
        best.1.energy.normalized_with_idle(&base.energy)
    );
}
