//! Power-capped clusters: the energy/BSLD trade-off under a hard budget,
//! with idle sleep states.
//!
//! ```text
//! cargo run --release --example power_capping [cap_fraction]
//! ```
//!
//! `cap_fraction` is the budget as a fraction of the machine's peak draw
//! (default 0.6). The example runs SDSC-Blue four ways — uncapped
//! baseline, sleep states only, capped baseline, capped + the paper's
//! DVFS policy — and prints the ledger-level power picture of each.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::{PowerAwareConfig, PowerCapConfig, Simulator, WqThreshold};
use bsld::metrics::TextTable;
use bsld::powercap::SleepConfig;
use bsld::workload::profiles::TraceProfile;

fn main() {
    let cap: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("cap_fraction must be a number"))
        .unwrap_or(0.6);
    let w = TraceProfile::sdsc_blue().generate(2010, 3000);
    let sim = Simulator::paper_default(&w.cluster_name, w.cpus);

    let dvfs = PowerAwareConfig {
        bsld_threshold: 2.0,
        wq_threshold: WqThreshold::NoLimit,
    };
    let cases: Vec<(&str, PowerCapConfig)> = vec![
        ("uncapped baseline", PowerCapConfig::observe_only()),
        (
            "sleep states only",
            PowerCapConfig::observe_only().with_sleep(SleepConfig::paper_default()),
        ),
        (
            "hard cap",
            PowerCapConfig::hard(cap).with_sleep(SleepConfig::paper_default()),
        ),
        (
            "hard cap + DVFS 2/NO",
            PowerCapConfig::hard(cap)
                .with_sleep(SleepConfig::paper_default())
                .with_policy(dvfs),
        ),
    ];

    println!(
        "{}: {} jobs on {} cpus, cap = {:.0}% of peak draw\n",
        w.cluster_name,
        w.jobs.len(),
        w.cpus,
        cap * 100.0
    );
    let mut t = TextTable::new(vec![
        "configuration",
        "energy",
        "peak",
        "avg power",
        "avg BSLD",
        "deferrals",
        "wakes",
    ]);
    let mut base_energy = None;
    for (name, cfg) in &cases {
        let r = match sim.run_power_capped(&w.jobs, cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!(
                    "{name}: {e}\n(this budget cannot run the workload; try a higher cap_fraction)"
                );
                std::process::exit(2);
            }
        };
        let base = *base_energy.get_or_insert(r.power.energy);
        t.row(vec![
            name.to_string(),
            format!("{:.3}x", r.power.energy / base),
            format!("{:.0}", r.power.peak),
            format!("{:.0}", r.power.average),
            format!("{:.2}", r.run.metrics.avg_bsld),
            r.power.cap.deferrals.to_string(),
            r.power.sleep.wakes.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(energy is the ledger integral incl. idle draw and wake penalties,\n normalised to the uncapped baseline; power in normalised units)");
}
