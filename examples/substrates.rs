//! Scheduling-substrate comparison: EASY vs. conservative backfilling vs.
//! FCFS, with and without the power-aware policy — plus the resource
//! selection policies.
//!
//! ```text
//! cargo run --release --example substrates
//! ```
//!
//! The paper builds on EASY backfilling; this example shows how much that
//! choice matters, and what a partition-constrained machine (contiguous
//! allocation) loses to fragmentation.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::cluster::SelectionPolicy;
use bsld::core::{PowerAwareConfig, Simulator};
use bsld::metrics::TextTable;
use bsld::par::par_map;
use bsld::workload::profiles::TraceProfile;

fn main() {
    let w = TraceProfile::sdsc_blue().generate(2010, 2500);
    let cfg = PowerAwareConfig::medium();
    println!(
        "{}: {} jobs on {} cpus, policy {}\n",
        w.cluster_name,
        w.jobs.len(),
        w.cpus,
        cfg.label()
    );

    #[derive(Clone, Copy)]
    enum Variant {
        Easy(bool),
        Conservative(bool),
        Fcfs(bool),
        Selection(SelectionPolicy, bool),
    }
    let variants: Vec<(&str, Variant)> = vec![
        ("EASY", Variant::Easy(false)),
        ("EASY + DVFS", Variant::Easy(true)),
        ("Conservative", Variant::Conservative(false)),
        ("Conservative + DVFS", Variant::Conservative(true)),
        ("FCFS (no backfill)", Variant::Fcfs(false)),
        ("FCFS + DVFS", Variant::Fcfs(true)),
        (
            "EASY, contiguous alloc",
            Variant::Selection(SelectionPolicy::ContiguousFirstFit, false),
        ),
        (
            "EASY, contiguous + DVFS",
            Variant::Selection(SelectionPolicy::ContiguousFirstFit, true),
        ),
    ];

    let results = par_map(variants.clone(), bsld::par::default_threads(), |(_, v)| {
        let base = Simulator::paper_default(&w.cluster_name, w.cpus);
        let (sim, dvfs) = match v {
            Variant::Easy(d) => (base, d),
            Variant::Conservative(d) => (base.with_conservative(), d),
            Variant::Fcfs(d) => (base.without_backfill(), d),
            Variant::Selection(sel, d) => (base.with_selection(sel), d),
        };
        if dvfs {
            sim.run_power_aware(&w.jobs, &cfg).unwrap().metrics
        } else {
            sim.run_baseline(&w.jobs).unwrap().metrics
        }
    });

    let easy_base = &results[0];
    let mut t = TextTable::new(vec![
        "substrate",
        "E(idle=0)",
        "avg BSLD",
        "avg wait(s)",
        "p-reduced",
    ]);
    for ((label, _), m) in variants.iter().zip(&results) {
        t.row(vec![
            label.to_string(),
            format!(
                "{:.3}",
                m.energy.normalized_computational(&easy_base.energy)
            ),
            format!("{:.2}", m.avg_bsld),
            format!("{:.0}", m.avg_wait_secs),
            format!(
                "{:.0}%",
                m.reduced_jobs as f64 / m.jobs.max(1) as f64 * 100.0
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "EASY's aggressive backfilling is what keeps the DVFS penalty tolerable;\n\
         conservative trades a little backfilling for fairness, FCFS collapses,\n\
         and contiguous allocation pays a fragmentation tax on top."
    );
}
