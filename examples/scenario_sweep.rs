//! Declarative scenarios: describe a sweep as data, run it with one call.
//!
//! Builds the same experiment twice — once as a [`ScenarioSet`] with sweep
//! axes, once by parsing the equivalent `.scn` text — and shows they are
//! the same object producing the same grid. Run with:
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use bsld::core::scenario::{
    PolicySpec, ProfileName, Scenario, ScenarioSet, SleepSpec, SweepAxis, WorkloadSpec,
};
use bsld::core::WqThreshold;

fn main() {
    // A base spec: 400 SDSC-Blue-like jobs on a 64-cpu machine, the
    // paper's medium policy, ledger observation on.
    let mut base = Scenario::synthetic("demo", ProfileName::SdscBlue, 400, 2010);
    if let WorkloadSpec::Synthetic { scale_cpus, .. } = &mut base.workload {
        *scale_cpus = Some(64);
    }
    base.policy = PolicySpec::BsldThreshold {
        th: 2.0,
        wq: WqThreshold::NoLimit,
    };
    base.power.sleep = SleepSpec::Paper;
    base.power.observe = true;

    // Sweep two axes: BSLD threshold x power cap.
    let set = ScenarioSet {
        base,
        axes: vec![
            SweepAxis::BsldThreshold(vec![1.5, 2.0, 3.0]),
            SweepAxis::CapFraction(vec![0.6, 0.8]),
        ],
        replications: 1,
        cell_budget_s: None,
    };

    // The set serializes to a .scn file and parses back identically —
    // check in the text form, rerun the exact same sweep later.
    let text = set.render();
    println!("--- scenario file ---\n{text}--- end ---\n");
    assert_eq!(ScenarioSet::parse(&text).unwrap(), set);

    // One call runs the expanded grid in parallel.
    let results = set.run(bsld::par::default_threads()).unwrap();
    println!(
        "{:<22} {:>8} {:>10} {:>12}",
        "scenario", "avgBSLD", "reduced", "E(ledger)"
    );
    for (sc, res) in &results {
        let m = &res.run.metrics;
        let ledger = res.power.as_ref().map(|p| p.energy).unwrap_or(0.0);
        println!(
            "{:<22} {:>8.2} {:>10} {:>12.3e}",
            sc.name, m.avg_bsld, m.reduced_jobs, ledger
        );
    }
}
