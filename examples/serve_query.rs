//! Scheduling as a service, end to end in one process.
//!
//! Binds a resident [`Server`] on a scratch Unix socket, runs it on a
//! background thread, and drives it with the library [`Client`]: a cold
//! what-if query, a warm repeat answered from the result cache, an
//! override query, a status probe, and a graceful shutdown. Run with:
//!
//! ```text
//! cargo run --release --example serve_query
//! ```

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::time::Instant;

use bsld::metrics::Json;
use bsld::serve::{Client, Overrides, ServeConfig, Server, StateConfig};

const SCN: &str = "scenario = what-if\n\
                   workload = synthetic\n\
                   profile = ctc\n\
                   jobs = 300\n\
                   seed = 2010\n\
                   policy = bsld:2/NO\n\
                   \n\
                   sweep.bsld_th = 1.5 2 3\n";

fn main() {
    let socket = std::env::temp_dir().join(format!("bsld-example-{}.sock", std::process::id()));
    let cfg = ServeConfig {
        socket: socket.clone(),
        workers: 2,
        state: StateConfig::default(),
    };

    // The daemon: normally `bsld-repro serve --socket PATH`, here a thread.
    let server = Server::bind(cfg).expect("bind scratch socket");
    let daemon = std::thread::spawn(move || server.run().expect("daemon exits cleanly"));

    let mut client = Client::connect(&socket).expect("connect to the daemon");

    // Cold: the daemon parses the spec, generates the workload, simulates
    // all three sweep cells.
    let t = Instant::now();
    let cold = client.run(SCN, &Overrides::default()).unwrap();
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("{}", cold.get("table").and_then(Json::as_str).unwrap());
    println!(
        "cold query: {} cells, {} cached, {cold_ms:.1} ms",
        cold.get("cells").and_then(Json::as_u64).unwrap(),
        cold.get("cached").and_then(Json::as_u64).unwrap(),
    );

    // Warm repeat: every cell comes back from the content-hash result
    // cache — identical bytes, near-zero latency.
    let t = Instant::now();
    let warm = client.run(SCN, &Overrides::default()).unwrap();
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm.get("table"), cold.get("table"), "warm bytes identical");
    println!(
        "warm query: {} cached, {warm_ms:.2} ms ({:.0}x faster)",
        warm.get("cached").and_then(Json::as_u64).unwrap(),
        cold_ms / warm_ms.max(1e-6),
    );

    // A what-if override: same spec, capped at 70% of peak draw. The
    // workload cache still hits; only the repriced cells simulate.
    let capped = client
        .run(
            SCN,
            &Overrides {
                cap: Some(Some(0.7)),
                ..Overrides::default()
            },
        )
        .unwrap();
    println!("{}", capped.get("table").and_then(Json::as_str).unwrap());

    // Status: cache counters across the three runs.
    let status = client.status().unwrap();
    for key in ["runs", "result_hits", "workload_hits"] {
        print!("{key}={} ", status.get(key).and_then(Json::as_u64).unwrap());
    }
    println!();

    // Drain and exit; the daemon unlinks its socket on the way out.
    client.shutdown().unwrap();
    daemon.join().unwrap();
    assert!(!socket.exists(), "socket unlinked on shutdown");
}
